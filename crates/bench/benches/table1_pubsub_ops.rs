//! Table I — computation overhead for v-Bundle pub-sub operations:
//! subscription, unsubscription, publication (and anycast + aggregation
//! update, which v-Bundle layers on top).
//!
//! The paper measures these with `System.nanoTime` averaged over 1000
//! runs on 3 servers; here Criterion measures the full simulated protocol
//! processing (all nodes' computation for one operation) on a 16-node
//! overlay with zero network latency, so the reported time is pure
//! computation, as in the paper.
//!
//! Run: `cargo bench -p vbundle-bench --bench table1_pubsub_ops`

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use vbundle_dcn::Topology;
use vbundle_pastry::{overlay, IdAssignment, NodeHandle, PastryConfig, PastryMsg, PastryNode};
use vbundle_scribe::{group_id, CollectClient, GroupId, Scribe, ScribeMsg, TestPayload};
use vbundle_sim::{ConstantLatency, Engine, SimDuration};

type Net = Engine<PastryMsg<ScribeMsg<TestPayload>>, PastryNode<Scribe<CollectClient>>>;

fn overlay_16(seed: u64) -> (Net, Vec<NodeHandle>) {
    let topo = Arc::new(
        Topology::builder()
            .pods(1)
            .racks_per_pod(4)
            .servers_per_rack(4)
            .build(),
    );
    overlay::launch(
        &topo,
        IdAssignment::TopologyAware,
        PastryConfig::default(),
        seed,
        // Zero latency: measured time is protocol computation only.
        Box::new(ConstantLatency(SimDuration::ZERO)),
        |_, _| Scribe::new(CollectClient::default()),
    )
}

fn join_group(net: &mut Net, handles: &[NodeHandle], g: GroupId) {
    for h in handles {
        net.call(h.actor, |node, ctx| {
            node.app_call(ctx, |scribe, actx| {
                scribe.client_call(actx, |_, sctx| sctx.join(g));
            });
        });
    }
    net.run_to_quiescence();
}

fn bench_subscribe(c: &mut Criterion) {
    c.bench_function("table1/subscription", |b| {
        b.iter_batched_ref(
            || overlay_16(1),
            |(net, handles)| {
                let g = group_id("bench-group");
                net.call(handles[5].actor, |node, ctx| {
                    node.app_call(ctx, |scribe, actx| {
                        scribe.client_call(actx, |_, sctx| sctx.join(g));
                    });
                });
                net.run_to_quiescence();
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_unsubscribe(c: &mut Criterion) {
    c.bench_function("table1/unsubscription", |b| {
        b.iter_batched_ref(
            || {
                let (mut net, handles) = overlay_16(2);
                let g = group_id("bench-group");
                join_group(&mut net, &handles, g);
                (net, handles)
            },
            |(net, handles)| {
                let g = group_id("bench-group");
                net.call(handles[5].actor, |node, ctx| {
                    node.app_call(ctx, |scribe, actx| {
                        scribe.client_call(actx, |_, sctx| sctx.leave(g));
                    });
                });
                net.run_to_quiescence();
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_publish(c: &mut Criterion) {
    let (mut net, handles) = overlay_16(3);
    let g = group_id("bench-group");
    join_group(&mut net, &handles, g);
    c.bench_function("table1/publication", |b| {
        b.iter(|| {
            net.call(handles[7].actor, |node, ctx| {
                node.app_call(ctx, |scribe, actx| {
                    scribe.client_call(actx, |_, sctx| sctx.multicast(g, TestPayload(1)));
                });
            });
            net.run_to_quiescence();
        });
    });
}

fn bench_anycast(c: &mut Criterion) {
    let (mut net, handles) = overlay_16(4);
    let g = group_id("bench-group");
    join_group(&mut net, &handles, g);
    for h in &handles {
        net.actor_mut(h.actor).app_mut().client_mut().accept_anycast = true;
    }
    c.bench_function("table1/anycast", |b| {
        b.iter(|| {
            net.call(handles[2].actor, |node, ctx| {
                node.app_call(ctx, |scribe, actx| {
                    scribe.client_call(actx, |_, sctx| sctx.anycast(g, TestPayload(2)));
                });
            });
            net.run_to_quiescence();
        });
    });
}

fn bench_route(c: &mut Criterion) {
    // Raw Pastry routing cost as the baseline all operations pay.
    let topo = Arc::new(
        Topology::builder()
            .pods(1)
            .racks_per_pod(4)
            .servers_per_rack(4)
            .build(),
    );
    let (mut net, handles) = vbundle_pastry::overlay::launch_null(
        &topo,
        IdAssignment::TopologyAware,
        PastryConfig::default(),
        5,
    );
    let key = group_id("routed-key");
    c.bench_function("table1/pastry_route", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            net.call(handles[(i % 16) as usize].actor, |node, ctx| {
                node.app_call(ctx, |_, actx| {
                    actx.route(key, vbundle_pastry::overlay::Probe(i))
                });
            });
            net.run_to_quiescence();
        });
    });
}

criterion_group!(
    name = table1;
    config = Criterion::default().sample_size(200);
    targets = bench_subscribe, bench_unsubscribe, bench_publish, bench_anycast, bench_route
);
criterion_main!(table1);

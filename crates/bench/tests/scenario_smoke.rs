//! Small-scale smoke tests of the figure scenarios, so the benchmark
//! harness code is exercised by `cargo test` (the full-size runs live in
//! the `fig*` binaries).

use std::sync::Arc;

use vbundle_bench::scenarios::{five_customer_placement, place_wave, skewed_cluster, SippTestbed};
use vbundle_core::{metrics, PlacementPolicy, VBundleConfig};
use vbundle_dcn::{Bandwidth, Topology};
use vbundle_sim::{SimDuration, SimTime};
use vbundle_workloads::SkewedLoad;

fn small_topo() -> Arc<Topology> {
    Arc::new(
        Topology::builder()
            .pods(2)
            .racks_per_pod(4)
            .servers_per_rack(5)
            .build(),
    )
}

#[test]
fn fig7_scenario_clusters_customers() {
    let topo = small_topo();
    let (model, _) = five_customer_placement(
        &topo,
        PlacementPolicy::VBundle,
        10,
        Bandwidth::from_mbps(100.0),
        7,
    );
    assert_eq!(model.num_vms(), 50);
    let placements: Vec<_> = model
        .placements()
        .iter()
        .map(|(vm, s)| (vm.customer, *s))
        .collect();
    for l in metrics::customer_locality(&topo, &placements) {
        assert!(
            l.racks_spanned <= 2,
            "{} spans {} racks",
            l.customer,
            l.racks_spanned
        );
    }
}

#[test]
fn fig8_scenario_growth_keeps_locality_ordering() {
    let topo = small_topo();
    let mut results = Vec::new();
    for policy in [PlacementPolicy::VBundle, PlacementPolicy::Greedy] {
        let (mut model, customers) =
            five_customer_placement(&topo, policy, 8, Bandwidth::from_mbps(100.0), 7);
        place_wave(
            &mut model,
            policy,
            &customers,
            1000,
            8,
            Bandwidth::from_mbps(100.0),
            8,
        );
        let placements: Vec<_> = model
            .placements()
            .iter()
            .map(|(vm, s)| (vm.customer, *s))
            .collect();
        let locality = metrics::customer_locality(&topo, &placements);
        let mean_dist =
            locality.iter().map(|l| l.mean_pair_distance).sum::<f64>() / locality.len() as f64;
        results.push(mean_dist);
    }
    assert!(
        results[0] < results[1],
        "v-Bundle ({}) must beat greedy ({}) on pair distance",
        results[0],
        results[1]
    );
}

#[test]
fn fig9_scenario_relieves_overload() {
    let topo = small_topo();
    let config = VBundleConfig::default()
        .with_threshold(0.15)
        .with_update_interval(SimDuration::from_secs(20))
        .with_rebalance_interval(SimDuration::from_secs(60));
    let (mut cluster, before) = skewed_cluster(topo, config, &SkewedLoad::default(), 10, 9);
    assert!((metrics::mean(&before) - 0.6226).abs() < 1e-9);
    cluster.run_until(SimTime::from_mins(15));
    let after = cluster.utilizations();
    let mean = metrics::mean(&after);
    let max = after.iter().cloned().fold(0.0, f64::max);
    assert!(cluster.total_migrations() > 0);
    assert!(
        max <= mean + 0.15 + 0.11,
        "max {max} above mean {mean} + threshold"
    );
}

#[test]
fn fig12_scenario_recovers_sipp() {
    let mut testbed = SippTestbed::new(6, 12);
    let mut starved_seen = false;
    let mut recovered = false;
    for _ in 1..=400u64 {
        let (_, granted, demand) = testbed.tick_1s();
        if demand.as_mbps() > 0.0 && granted.as_mbps() < demand.as_mbps() * 0.9 {
            starved_seen = true;
        }
        if starved_seen
            && testbed.cluster.total_migrations() > 0
            && granted.as_mbps() >= demand.as_mbps() * 0.99
        {
            recovered = true;
            break;
        }
    }
    assert!(starved_seen, "the testbed never created contention");
    assert!(recovered, "v-Bundle never recovered the SIPp VM");
    // Failures stopped growing after recovery.
    let failed_at_recovery = testbed.sipp.cumulative_failed();
    for _ in 0..60 {
        testbed.tick_1s();
    }
    assert_eq!(testbed.sipp.cumulative_failed(), failed_at_recovery);
}

#[test]
fn skewed_cluster_is_deterministic() {
    let build = || {
        let topo = small_topo();
        let (cluster, utils) =
            skewed_cluster(topo, VBundleConfig::default(), &SkewedLoad::default(), 5, 3);
        (cluster.num_vms(), utils)
    };
    assert_eq!(build(), build());
}

//! The scenario driver: plays a [`FaultPlan`] against a running engine and
//! measures how the overlay recovers.

use std::fmt;
use std::sync::Arc;

use vbundle_dcn::{DomainKind, Topology};
use vbundle_sim::{Actor, ActorId, Engine, FaultStats, Message, SimDuration, SimTime};

use crate::injector::{ChaosInjector, SharedNet};
use crate::invariants::Violation;
use crate::plan::{FaultKind, FaultPlan, Scope};

/// How many flight-recorder events [`run_scenario`] dumps to stderr when
/// invariants are still open at the deadline (and a recorder is enabled).
const FLIGHT_DUMP_TAIL: usize = 64;

/// Plays a [`FaultPlan`]'s events at their scheduled times while the
/// engine runs.
///
/// Node faults (crash / restart) go straight to the engine; network faults
/// mutate the [`SharedNet`] state that the installed [`ChaosInjector`]
/// reads on every send.
pub struct ChaosDriver {
    plan: FaultPlan,
    topo: Arc<Topology>,
    net: SharedNet,
    next_event: usize,
}

impl ChaosDriver {
    /// Installs a [`ChaosInjector`] for `plan` into the engine and returns
    /// the driver that will play the plan's events.
    pub fn install<W: Message, A: Actor<W>>(
        engine: &mut Engine<W, A>,
        topo: Arc<Topology>,
        plan: FaultPlan,
    ) -> ChaosDriver {
        let net = SharedNet::new(plan.seed);
        engine.set_injector(Box::new(ChaosInjector::new(Arc::clone(&topo), net.clone())));
        ChaosDriver {
            plan,
            topo,
            net,
            next_event: 0,
        }
    }

    /// The shared network-fault state (for tests that want to inspect it).
    pub fn net(&self) -> &SharedNet {
        &self.net
    }

    /// True once every plan event has fired.
    pub fn done(&self) -> bool {
        self.next_event >= self.plan.events().len()
    }

    /// Applies one fault to the engine / network state.
    fn apply<W: Message, A: Actor<W>>(&self, engine: &mut Engine<W, A>, kind: &FaultKind) {
        match *kind {
            FaultKind::Crash(actor) => engine.fail(actor),
            FaultKind::Restart(actor) => engine.restart(actor),
            // Skip already-dead servers so a repeated (or overlapping)
            // domain crash is a no-op for them: no duplicate flight
            // events, and a later Restart still observes exactly one
            // crash per server.
            FaultKind::CrashRack(rack) => {
                for s in self.topo.domain_servers(DomainKind::Rack, rack) {
                    let actor = ActorId::new(s.index() as u32);
                    if engine.is_alive(actor) {
                        engine.fail(actor);
                    }
                }
            }
            FaultKind::CrashPod(pod) => {
                for s in self.topo.domain_servers(DomainKind::Pod, pod) {
                    let actor = ActorId::new(s.index() as u32);
                    if engine.is_alive(actor) {
                        engine.fail(actor);
                    }
                }
            }
            FaultKind::Partition { a, b } => self.net.with(|st| st.partitions.push((a, b))),
            FaultKind::HealPartitions => self.net.with(|st| st.partitions.clear()),
            FaultKind::HealPartition { a, b } => self.net.with(|st| {
                st.partitions
                    .retain(|&(x, y)| !((x == a && y == b) || (x == b && y == a)))
            }),
            FaultKind::Degrade { from, to, fault } => {
                self.net.with(|st| st.degradations.push((from, to, fault)))
            }
            FaultKind::ClearDegradations => self.net.with(|st| st.degradations.clear()),
            FaultKind::CorruptAggregate { node, mode } => self
                .net
                .with(|st| st.corruptions.push((Scope::Actor(node), Scope::All, mode))),
            FaultKind::ClearCorruptions => self.net.with(|st| st.corruptions.clear()),
        }
    }

    /// Runs the engine up to `deadline`, firing every plan event whose
    /// time falls in the interval just before advancing past it.
    pub fn run_until<W: Message, A: Actor<W>>(
        &mut self,
        engine: &mut Engine<W, A>,
        deadline: SimTime,
    ) {
        while self.next_event < self.plan.events().len() {
            let at = self.plan.events()[self.next_event].at;
            if at > deadline {
                break;
            }
            engine.run_until(at);
            // Fire every event scheduled for this instant.
            while self.next_event < self.plan.events().len()
                && self.plan.events()[self.next_event].at == at
            {
                let kind = self.plan.events()[self.next_event].kind.clone();
                self.apply(engine, &kind);
                self.next_event += 1;
            }
        }
        engine.run_until(deadline);
    }
}

/// How [`run_scenario`] watches a run.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Name stamped into the report.
    pub name: String,
    /// How often the invariants are re-checked after the last fault.
    pub check_interval: SimDuration,
    /// How long after the last fault the scenario keeps watching before
    /// giving up and reporting the still-open violations.
    pub deadline: SimDuration,
}

/// What a scenario run measured. [`Display`](fmt::Display) renders it from
/// simulated time and counters only, so two runs of the same seeded
/// scenario produce byte-identical reports.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// The scenario's name.
    pub scenario: String,
    /// Message-level faults the injector actually applied.
    pub faults: FaultStats,
    /// When the last plan event fired (recovery is measured from here).
    pub last_fault_at: SimTime,
    /// When all structural invariants first held again (`None` = never
    /// within the deadline).
    pub repaired_at: Option<SimTime>,
    /// Messages the cluster sent between the last fault and repair.
    pub messages_to_repair: Option<u64>,
    /// When the aggregation layer first agreed with ground truth again.
    pub agg_converged_at: Option<SimTime>,
    /// Migrations abandoned (VM rolled back to the shedder) over the whole
    /// run.
    pub failed_migrations: u64,
    /// Invariant violations still open when the deadline hit.
    pub violations_at_deadline: Vec<Violation>,
}

impl RecoveryReport {
    /// Time from the last fault until all invariants held.
    pub fn time_to_repair(&self) -> Option<SimDuration> {
        self.repaired_at.map(|t| t - self.last_fault_at)
    }

    /// Time from the last fault until aggregation agreed with ground truth.
    pub fn aggregate_staleness(&self) -> Option<SimDuration> {
        self.agg_converged_at.map(|t| t - self.last_fault_at)
    }
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "scenario: {}", self.scenario)?;
        writeln!(
            f,
            "  injected: {} dropped, {} delayed, {} duplicated, {} corrupted",
            self.faults.dropped, self.faults.delayed, self.faults.duplicated, self.faults.corrupted
        )?;
        writeln!(f, "  last fault at: {}", self.last_fault_at)?;
        match self.time_to_repair() {
            Some(d) => writeln!(f, "  time to repair: {d}")?,
            None => writeln!(f, "  time to repair: DID NOT REPAIR")?,
        }
        match self.messages_to_repair {
            Some(n) => writeln!(f, "  messages to repair: {n}")?,
            None => writeln!(f, "  messages to repair: n/a")?,
        }
        match self.aggregate_staleness() {
            Some(d) => writeln!(f, "  aggregate staleness: {d}")?,
            None => writeln!(f, "  aggregate staleness: DID NOT CONVERGE")?,
        }
        writeln!(f, "  failed migrations: {}", self.failed_migrations)?;
        if self.violations_at_deadline.is_empty() {
            write!(f, "  open violations: none")?;
        } else {
            write!(
                f,
                "  open violations: {}",
                self.violations_at_deadline.len()
            )?;
            for v in &self.violations_at_deadline {
                write!(f, "\n    - {v}")?;
            }
        }
        Ok(())
    }
}

/// Plays `plan` against `engine`, then repeatedly checks the caller's
/// invariants until they hold (and aggregation matches ground truth) or
/// the deadline expires, and reports the recovery metrics.
///
/// The closures keep this generic over the stack under test:
/// `invariants` returns the open structural violations, `agg_ok` says
/// whether the aggregation layer currently agrees with ground truth, and
/// `failed_migrations` reads the cluster-wide abandoned-migration count
/// (return 0 for stacks without migration).
pub fn run_scenario<W: Message, A: Actor<W>>(
    engine: &mut Engine<W, A>,
    topo: Arc<Topology>,
    plan: FaultPlan,
    spec: &ScenarioSpec,
    mut invariants: impl FnMut(&Engine<W, A>) -> Vec<Violation>,
    mut agg_ok: impl FnMut(&Engine<W, A>) -> bool,
    mut failed_migrations: impl FnMut(&Engine<W, A>) -> u64,
) -> RecoveryReport {
    let last_fault_at = plan.last_fault_at().unwrap_or(engine.now());
    let mut driver = ChaosDriver::install(engine, topo, plan);
    driver.run_until(engine, last_fault_at);

    let base_msgs = engine.counter_totals().total_msgs();
    let deadline = last_fault_at + spec.deadline;
    let mut repaired_at = None;
    let mut messages_to_repair = None;
    let mut agg_converged_at = None;
    let mut open = invariants(engine);

    loop {
        if repaired_at.is_none() && open.is_empty() {
            repaired_at = Some(engine.now());
            messages_to_repair = Some(engine.counter_totals().total_msgs() - base_msgs);
        }
        if agg_converged_at.is_none() && agg_ok(engine) {
            agg_converged_at = Some(engine.now());
        }
        if (repaired_at.is_some() && agg_converged_at.is_some()) || engine.now() >= deadline {
            break;
        }
        let next = (engine.now() + spec.check_interval).min(deadline);
        driver.run_until(engine, next);
        open = invariants(engine);
    }

    if !open.is_empty() && engine.flight().is_enabled() {
        // Invariants still open at the deadline: dump the tail of the
        // flight recorder to stderr so the failure comes with the recent
        // event history instead of just a violation list. Stderr only —
        // the golden-gated report stays on stdout.
        eprintln!(
            "[{}] {} invariant(s) open at deadline; last {} recorded events:",
            spec.name,
            open.len(),
            FLIGHT_DUMP_TAIL
        );
        eprint!("{}", engine.flight().dump_tail(FLIGHT_DUMP_TAIL));
    }
    let failed = failed_migrations(engine);
    let faults = engine.fault_stats();
    engine.take_injector();
    RecoveryReport {
        scenario: spec.name.clone(),
        faults,
        last_fault_at,
        repaired_at,
        messages_to_repair,
        agg_converged_at,
        failed_migrations: failed,
        violations_at_deadline: open,
    }
}

//! Invariant checkers: snapshot the overlay mid-run and report what is
//! broken *right now*.
//!
//! Each checker returns a list of human-readable [`Violation`]s (empty =
//! healthy). They are meant to be called repeatedly while faults play out:
//! violations immediately after a crash are expected — the interesting
//! questions, answered by [`run_scenario`](crate::run_scenario), are
//! whether they *clear* once the repair protocols run, and how long and
//! how many messages that takes.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use vbundle_aggregation::{AggClient, Aggregator};
use vbundle_core::{reconcile, Controller, VbEngine, VmId};
use vbundle_pastry::{NodeId, PastryApp, PastryMsg, PastryNode};
use vbundle_scribe::{GroupId, Scribe, ScribeClient, ScribeMsg};
use vbundle_sim::{ActorId, Engine};

/// A broken invariant, described for a human.
pub type Violation = String;

/// Ring / leaf-set consistency across all live, joined nodes:
///
/// - every live node's ring successor and predecessor (computed from the
///   global set of live ids) appear in its leaf set;
/// - no leaf set still lists a dead node.
pub fn check_leaf_sets<A: PastryApp>(
    engine: &Engine<PastryMsg<A::Msg>, PastryNode<A>>,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut ring: Vec<(NodeId, ActorId)> = Vec::new();
    for (id, node) in engine.actors() {
        if engine.is_alive(id) && node.is_joined() {
            ring.push((node.state().id(), id));
        }
    }
    ring.sort();
    if ring.len() < 2 {
        return out;
    }
    for (i, &(node_id, actor)) in ring.iter().enumerate() {
        let leaf = engine.actor(actor).state().leaf_set();
        let succ = ring[(i + 1) % ring.len()].0;
        let pred = ring[(i + ring.len() - 1) % ring.len()].0;
        for (role, neighbor) in [("successor", succ), ("predecessor", pred)] {
            if !leaf.contains(neighbor) {
                out.push(format!(
                    "leaf-set: node {node_id:?} (actor {}) is missing its ring {role} {neighbor:?}",
                    actor.index()
                ));
            }
        }
        for member in leaf.members() {
            if !engine.is_alive(member.actor) {
                out.push(format!(
                    "leaf-set: node {node_id:?} (actor {}) still lists dead node {:?} (actor {})",
                    actor.index(),
                    member.id,
                    member.actor.index()
                ));
            }
        }
    }
    out
}

/// Scribe trees remain spanning trees of the live members: for every group
/// known to any live node, there is exactly one live root, the tree
/// reached from it by child links is acyclic and free of dead links, and
/// every live member is inside it.
pub fn check_scribe_trees<C: ScribeClient>(
    engine: &Engine<PastryMsg<ScribeMsg<C::Msg>>, PastryNode<Scribe<C>>>,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut groups: BTreeSet<u128> = BTreeSet::new();
    for (id, node) in engine.actors() {
        if engine.is_alive(id) {
            groups.extend(node.app().group_ids().into_iter().map(|g| g.as_u128()));
        }
    }
    for g in groups {
        let group = GroupId::from_u128(g);
        // Live nodes participating in this group's tree.
        let mut states: BTreeMap<u32, &vbundle_scribe::GroupState> = BTreeMap::new();
        for (id, node) in engine.actors() {
            if !engine.is_alive(id) {
                continue;
            }
            if let Some(st) = node.app().group(group) {
                if st.in_tree() {
                    states.insert(id.index() as u32, st);
                }
            }
        }
        if states.is_empty() {
            continue;
        }
        let roots: Vec<u32> = states
            .iter()
            .filter(|(_, st)| st.root)
            .map(|(&a, _)| a)
            .collect();
        match roots.len() {
            1 => {}
            0 => {
                out.push(format!("scribe: group {group:?} has no live root"));
                continue;
            }
            _ => {
                out.push(format!(
                    "scribe: group {group:?} has {} live roots (actors {roots:?})",
                    roots.len()
                ));
                continue;
            }
        }
        // BFS over child links from the root.
        let mut reached: BTreeSet<u32> = BTreeSet::new();
        let mut queue: VecDeque<u32> = VecDeque::from([roots[0]]);
        reached.insert(roots[0]);
        while let Some(actor) = queue.pop_front() {
            let st = states[&actor];
            for child in &st.children {
                let c = child.actor.index() as u32;
                if !engine.is_alive(child.actor) {
                    out.push(format!(
                        "scribe: group {group:?}: actor {actor} has dead child {c}"
                    ));
                    continue;
                }
                if !reached.insert(c) {
                    out.push(format!(
                        "scribe: group {group:?}: actor {c} reached twice (cycle or double graft)"
                    ));
                    continue;
                }
                if states.contains_key(&c) {
                    queue.push_back(c);
                } else {
                    out.push(format!(
                        "scribe: group {group:?}: actor {actor} links child {c} which is not in the tree"
                    ));
                }
            }
        }
        for (&actor, st) in &states {
            if st.member && !reached.contains(&actor) {
                out.push(format!(
                    "scribe: group {group:?}: live member {actor} unreachable from the root"
                ));
            }
        }
    }
    out
}

/// Access to the aggregation component embedded in a Scribe client, so the
/// aggregation checker can work for both the standalone [`AggClient`] and
/// the full v-Bundle [`Controller`].
pub trait HasAggregator {
    /// The embedded aggregator.
    fn aggregator(&self) -> &Aggregator;
}

impl HasAggregator for AggClient {
    fn aggregator(&self) -> &Aggregator {
        &self.agg
    }
}

impl HasAggregator for Controller {
    fn aggregator(&self) -> &Aggregator {
        self.aggregator()
    }
}

/// Aggregation convergence: every live subscriber's view of the global
/// `Sum` for `topic` matches the ground truth (the sum of live
/// subscribers' local values) within `tolerance`, relative to the truth's
/// magnitude.
pub fn check_aggregation<C>(
    engine: &Engine<PastryMsg<ScribeMsg<C::Msg>>, PastryNode<Scribe<C>>>,
    topic: GroupId,
    tolerance: f64,
) -> Vec<Violation>
where
    C: ScribeClient + HasAggregator,
{
    let mut out = Vec::new();
    let mut truth = 0.0;
    let mut subscribers = Vec::new();
    for (id, node) in engine.actors() {
        if !engine.is_alive(id) {
            continue;
        }
        let agg = node.app().client().aggregator();
        if let Some(local) = agg.local(topic) {
            truth += local.sum;
            subscribers.push((id, agg));
        }
    }
    let bound = tolerance * truth.abs().max(1.0);
    for (id, agg) in subscribers {
        match agg.global(topic) {
            None => out.push(format!(
                "aggregation: actor {} has no global value for topic {topic:?}",
                id.index()
            )),
            Some(global) => {
                if (global.sum - truth).abs() > bound {
                    out.push(format!(
                        "aggregation: actor {} sees sum {:.3} for topic {topic:?}, truth is {truth:.3}",
                        id.index(),
                        global.sum
                    ));
                }
            }
        }
    }
    out
}

/// Poison containment, part 1 — the steering signal: every live server's
/// *effective* cluster-mean bandwidth utilization (what its shuffling
/// logic actually steers on, after the aggregator's robust combine and
/// the controller's sanity gate) stays within `epsilon` of the honest
/// ground truth computed from the servers' actual state. Corrupted
/// *reports* never change a server's real demand, so the truth here is
/// immune to poisoning by construction.
pub fn check_global_mean(engine: &VbEngine, epsilon: f64) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut demand = 0.0;
    let mut capacity = 0.0;
    for (id, node) in engine.actors() {
        if !engine.is_alive(id) {
            continue;
        }
        let ctrl = node.app().client();
        demand += ctrl.demand_for(vbundle_core::ResourceKind::Bandwidth);
        capacity += ctrl.capacity().get(vbundle_core::ResourceKind::Bandwidth);
    }
    if capacity <= 0.0 {
        return out;
    }
    let truth = demand / capacity;
    for (id, node) in engine.actors() {
        if !engine.is_alive(id) {
            continue;
        }
        let ctrl = node.app().client();
        match ctrl.effective_mean_for(vbundle_core::ResourceKind::Bandwidth) {
            None => out.push(format!(
                "global-mean: server {} steers on no mean at all",
                id.index()
            )),
            // NaN compares false against everything, so test non-finite
            // explicitly — a NaN-poisoned mean must not slip through.
            Some(m) if !m.is_finite() || (m - truth).abs() > epsilon => out.push(format!(
                "global-mean: server {} steers on mean {m:.4}, honest truth is {truth:.4}",
                id.index()
            )),
            Some(_) => {}
        }
    }
    out
}

/// Poison containment, part 2 — the blast radius: the cluster started at
/// most `max_migrations` outbound migrations since `since`. A poisoned
/// mean that survives the defenses shows up here as a migration storm
/// (every server suddenly classifying itself as a shedder or receiver).
pub fn check_migration_rate(
    engine: &VbEngine,
    since: vbundle_sim::SimTime,
    max_migrations: u64,
) -> Vec<Violation> {
    let started: u64 = engine
        .actors()
        .map(|(_, node)| {
            node.app()
                .client()
                .stats
                .migration_times
                .iter()
                .filter(|&&t| t >= since)
                .count() as u64
        })
        .sum();
    if started > max_migrations {
        vec![format!(
            "migration-rate: {started} migrations started since {since} (bound {max_migrations})"
        )]
    } else {
        Vec::new()
    }
}

/// VM conservation across migrations: no VM is installed on two servers at
/// once, and every VM in `expected` is accounted for — hosted somewhere
/// (server state survives a warm restart) or sitting in a shedder's
/// in-flight ledger, from which it is either delivered or rolled back.
///
/// One reconciling exception: a VM listed in some *live* controller's
/// pending-fence set ([`Controller::fenced_vms`]) may transiently appear
/// on two servers — its rack was declared dead and the VM was
/// re-materialized, but the stale primary restarted before the fence
/// reached it. The fence is resent every failover tick, so the duplicate
/// is converging, not leaked.
pub fn check_vm_conservation(engine: &VbEngine, expected: &[VmId]) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut hosted: BTreeMap<VmId, Vec<usize>> = BTreeMap::new();
    let mut in_flight: BTreeSet<VmId> = BTreeSet::new();
    let mut fence_pending: BTreeSet<VmId> = BTreeSet::new();
    for (id, node) in engine.actors() {
        let ctrl = node.app().client();
        for vm in ctrl.vms() {
            hosted.entry(vm.id).or_default().push(id.index());
        }
        for vm in ctrl.in_flight_vms() {
            in_flight.insert(vm.id);
        }
        if engine.is_alive(id) {
            fence_pending.extend(ctrl.fenced_vms());
        }
    }
    for (vm, hosts) in &hosted {
        if hosts.len() > 1 && !fence_pending.contains(vm) {
            out.push(format!(
                "conservation: VM {} is installed on {} servers ({hosts:?})",
                vm.0,
                hosts.len()
            ));
        }
    }
    for vm in expected {
        if !hosted.contains_key(vm) && !in_flight.contains(vm) {
            out.push(format!(
                "conservation: VM {} is lost (neither hosted nor in flight)",
                vm.0
            ));
        }
    }
    out
}

/// Entitlement conservation under bundle trading — the ledger's "no
/// phantom credit" guarantee, checked from reassembled per-server books:
///
/// - every *live* borrower half still inside its validity window is
///   backed by a lender half with identical terms somewhere in the
///   cluster (crashed servers keep their state, so a frozen debit still
///   counts — the unsafe direction is credit with no debit anywhere);
/// - per customer, the cluster-wide sum of live entitled reservations
///   never exceeds the sum of purchased (base) reservations. Strict
///   equality is not required: a stranded lender debit under-uses the
///   bundle until expiry, which is tolerated;
/// - on every live server, no VM's shaper grant exceeds its live
///   entitlement ceiling.
///
/// All lease-liveness filtering uses one engine-wide `now`, so the check
/// is independent of each controller's event clock.
pub fn check_entitlement_conservation(engine: &VbEngine) -> Vec<Violation> {
    use vbundle_trade::LeaseRole;
    let now = engine.now();
    let eps = 1e-6;
    let mut out = Vec::new();

    // Reassemble the cluster-wide debit ledger (dead servers included).
    let mut lender_halves: BTreeMap<u64, vbundle_trade::Lease> = BTreeMap::new();
    for (_, node) in engine.actors() {
        for h in node.app().client().trade_book().halves() {
            if h.role == LeaseRole::Lender {
                lender_halves.insert(h.lease.id.0, h.lease);
            }
        }
    }

    // Per-customer conservation across ALL servers: client state survives
    // crashes, so the base/entitled sums stay comparable through faults.
    let mut base: BTreeMap<u32, f64> = BTreeMap::new();
    let mut entitled: BTreeMap<u32, f64> = BTreeMap::new();
    for (id, node) in engine.actors() {
        let ctrl = node.app().client();
        let book = ctrl.trade_book();
        for vm in ctrl.vms() {
            *base.entry(vm.customer.0).or_default() += vm.spec.reservation.bandwidth.as_mbps();
            *entitled.entry(vm.customer.0).or_default() += book
                .live_spec(vm.id, vm.spec, now)
                .reservation
                .bandwidth
                .as_mbps();
        }
        if !engine.is_alive(id) {
            continue;
        }
        // Live borrower halves must pair with a debit somewhere. The
        // liveness test is starts-aware: a renewal replacement lease is
        // minted before its validity window opens and must not be scored
        // as active credit until then.
        for h in book.halves() {
            if h.role != LeaseRole::Borrower || !h.lease.live_at(now) {
                continue;
            }
            match lender_halves.get(&h.lease.id.0) {
                None => out.push(format!(
                    "entitlement: server {} holds credit for lease {} with no backing debit anywhere",
                    id.index(),
                    h.lease.id
                )),
                Some(l) if *l != h.lease => out.push(format!(
                    "entitlement: lease {} terms disagree between lender and borrower halves",
                    h.lease.id
                )),
                Some(_) => {}
            }
        }
        // Shaper enforcement: grants follow the live ledger, never the
        // static contract plus phantom credit.
        let allocs =
            vbundle_core::shaper::allocate_entitled(ctrl.capacity().bandwidth, ctrl.vms(), |vm| {
                book.live_spec(vm.id, vm.spec, now)
            });
        for (vm, a) in ctrl.vms().iter().zip(&allocs) {
            let ceil = a
                .demand
                .min(book.live_spec(vm.id, vm.spec, now).limit.bandwidth);
            if a.granted.as_mbps() > ceil.as_mbps() + eps {
                out.push(format!(
                    "entitlement: server {} grants VM {} {:.3} Mbps beyond its live ceiling {:.3}",
                    id.index(),
                    vm.id,
                    a.granted.as_mbps(),
                    ceil.as_mbps()
                ));
            }
        }
    }
    // Cross-tenant (spot-market) leases legitimately move entitlement
    // between tenants: the buyer's VMs gained exactly what the seller's
    // bundle lost. Reattribute each live traded amount back to the seller
    // so the per-tenant sums stay comparable to purchased capacity — a
    // buyer whose gain has no matching lender debit anywhere still trips
    // the phantom-credit bound below.
    for lease in lender_halves.values() {
        if lease.cross_tenant() && lease.live_at(now) {
            let amt = lease.amount.bandwidth.as_mbps();
            *entitled.entry(lease.buyer.0).or_default() -= amt;
            *entitled.entry(lease.customer.0).or_default() += amt;
        }
    }
    for (customer, &e) in &entitled {
        let b = base.get(customer).copied().unwrap_or(0.0);
        if e > b + eps {
            out.push(format!(
                "entitlement: customer {customer} holds {e:.6} Mbps of live entitlement against {b:.6} purchased (phantom credit)"
            ));
        }
    }
    out
}

/// Billing conservation under the spot market — the double-entry
/// guarantee, checked from reassembled per-server
/// [`BillingBook`](vbundle_core::BillingBook)s
/// (crashed servers keep their books, exactly like the trade ledger):
/// every `Spend` entry pairs with a `Revenue` entry of identical terms
/// somewhere in the cluster. Revenue without spend is tolerated (a lost
/// grant whose reversal could mint phantom refunds is kept, see
/// [`reconcile`]); spend without revenue — a tenant charged for capacity
/// nobody sold — never is.
pub fn check_billing_conservation(engine: &VbEngine) -> Vec<Violation> {
    reconcile(
        engine
            .actors()
            .map(|(_, node)| node.app().client().billing()),
    )
    .violations
}

/// Per-tenant isolation caps under the spot market: on every live server,
/// each lender customer's committed cross-tenant outflow (priced leases
/// sold out of its bundle, including future-dated renewal replacements)
/// stays within `cap ×` its base reservations on that server. Checked
/// from the raw lender halves, independently of the controller's own
/// admission arithmetic.
pub fn check_isolation_caps(engine: &VbEngine, cap: f64) -> Vec<Violation> {
    use vbundle_trade::LeaseRole;
    let now = engine.now();
    let mut out = Vec::new();
    for (id, node) in engine.actors() {
        if !engine.is_alive(id) {
            continue;
        }
        let ctrl = node.app().client();
        let mut outflow: BTreeMap<u32, f64> = BTreeMap::new();
        for h in ctrl.trade_book().halves() {
            if h.role == LeaseRole::Lender && h.lease.cross_tenant() && h.lease.expires > now {
                *outflow.entry(h.lease.customer.0).or_default() +=
                    h.lease.amount.bandwidth.as_mbps();
            }
        }
        for (&customer, &sold) in &outflow {
            let base: f64 = ctrl
                .vms()
                .iter()
                .filter(|v| v.customer.0 == customer)
                .map(|v| v.spec.reservation.bandwidth.as_mbps())
                .sum();
            if sold > cap.clamp(0.0, 1.0) * base + 1e-6 {
                out.push(format!(
                    "isolation: server {} sold {sold:.3} Mbps of customer {customer}'s bundle \
                     cross-tenant against {base:.3} reserved (cap {:.0}%)",
                    id.index(),
                    100.0 * cap.clamp(0.0, 1.0)
                ));
            }
        }
    }
    out
}

/// Per-customer satisfied bandwidth demand (Mbps) across the *live*
/// servers: each live controller's shaper allocations, summed by the
/// hosting VM's customer. VMs stranded on crashed servers contribute
/// nothing — this is exactly what a tenant experiences mid-fault, and the
/// quantity [`check_bounded_degradation`] bounds.
pub fn customer_satisfaction(engine: &VbEngine) -> BTreeMap<u32, f64> {
    let mut out: BTreeMap<u32, f64> = BTreeMap::new();
    for (id, node) in engine.actors() {
        if !engine.is_alive(id) {
            continue;
        }
        let ctrl = node.app().client();
        for (vm, a) in ctrl.vms().iter().zip(ctrl.allocations()) {
            *out.entry(vm.customer.0).or_default() += a.granted.as_mbps();
        }
    }
    out
}

/// Bounded degradation — the survivability contract: after a fault, every
/// customer who had satisfied demand in `baseline` (a pre-fault
/// [`customer_satisfaction`] snapshot) still gets at least
/// `min_frac × baseline`. The check is per tenant, not aggregate: a
/// cluster that keeps 90% of total bandwidth flowing while zeroing one
/// tenant fails it.
///
/// A baseline customer with zero VMs placed anywhere in the cluster
/// (hosted on any server, live or crashed, or in a migration ledger) is
/// exempt rather than scored 0.0: its workload left the cluster — it was
/// never re-admitted or was deliberately drained — so "satisfaction"
/// is undefined, not violated.
pub fn check_bounded_degradation(
    engine: &VbEngine,
    baseline: &BTreeMap<u32, f64>,
    min_frac: f64,
) -> Vec<Violation> {
    let current = customer_satisfaction(engine);
    let mut placed: BTreeSet<u32> = BTreeSet::new();
    for (_, node) in engine.actors() {
        let ctrl = node.app().client();
        for vm in ctrl.vms() {
            placed.insert(vm.customer.0);
        }
        for vm in ctrl.in_flight_vms() {
            placed.insert(vm.customer.0);
        }
    }
    let mut out = Vec::new();
    for (&customer, &base) in baseline {
        if base <= 1e-9 || !placed.contains(&customer) {
            continue;
        }
        let cur = current.get(&customer).copied().unwrap_or(0.0);
        if cur + 1e-6 < min_frac * base {
            out.push(format!(
                "degradation: customer {customer} down to {cur:.3} of {base:.3} Mbps \
                 ({:.1}% < floor {:.1}%)",
                100.0 * cur / base,
                100.0 * min_frac
            ));
        }
    }
    out
}

/// Capacity safety: no live server's installed reservations exceed its
/// capacity (in particular its NIC bandwidth).
pub fn check_capacity(engine: &VbEngine) -> Vec<Violation> {
    let mut out = Vec::new();
    for (id, node) in engine.actors() {
        if !engine.is_alive(id) {
            continue;
        }
        let ctrl = node.app().client();
        let reserved = ctrl.reserved();
        if !reserved.fits_within(ctrl.capacity()) {
            out.push(format!(
                "capacity: server {} reserves {reserved:?} beyond its capacity {:?}",
                id.index(),
                ctrl.capacity()
            ));
        }
    }
    out
}

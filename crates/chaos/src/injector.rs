//! The network-fault injector that the sim engine consults on every send.
//!
//! [`ChaosInjector`] owns a seeded RNG and reads the *current* partition
//! and degradation rules out of a [`SharedNet`] — shared with the
//! [`ChaosDriver`](crate::ChaosDriver), which mutates the rules as plan
//! events fire. The simulation is single-threaded, so an `Rc<RefCell<…>>`
//! is enough.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vbundle_dcn::Topology;
use vbundle_sim::{ActorId, CorruptionMode, FaultAction, FaultInjector, SimTime};

use crate::plan::{LinkFault, Scope};

/// The mutable network-fault state: which cuts and degradations are live.
#[derive(Debug)]
pub struct NetState {
    /// Active partitions; traffic crossing any pair (either direction) is
    /// dropped.
    pub partitions: Vec<(Scope, Scope)>,
    /// Active degradations, directional `(from, to, fault)`. Every
    /// matching rule gets a chance to fault a message, in insert order.
    pub degradations: Vec<(Scope, Scope, LinkFault)>,
    /// Active poisoned reporters, directional `(from, to, mode)`: every
    /// matching message is marked for corruption (the engine mutates only
    /// the ones carrying corruptible content).
    pub corruptions: Vec<(Scope, Scope, CorruptionMode)>,
    rng: StdRng,
}

/// Shared handle onto [`NetState`] — cloned between the driver (writer)
/// and the injector (reader).
#[derive(Debug, Clone)]
pub struct SharedNet(Rc<RefCell<NetState>>);

impl SharedNet {
    /// Fresh state with no active faults and a seeded fault RNG.
    pub fn new(seed: u64) -> SharedNet {
        SharedNet(Rc::new(RefCell::new(NetState {
            partitions: Vec::new(),
            degradations: Vec::new(),
            corruptions: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
        })))
    }

    /// Runs `f` with mutable access to the state.
    pub fn with<T>(&self, f: impl FnOnce(&mut NetState) -> T) -> T {
        f(&mut self.0.borrow_mut())
    }
}

/// A [`FaultInjector`] that applies the active partitions and degradations
/// to every message the engine is about to enqueue.
#[derive(Debug)]
pub struct ChaosInjector {
    topo: Arc<Topology>,
    net: SharedNet,
}

impl ChaosInjector {
    /// Builds an injector over the shared network state.
    pub fn new(topo: Arc<Topology>, net: SharedNet) -> ChaosInjector {
        ChaosInjector { topo, net }
    }
}

impl FaultInjector for ChaosInjector {
    fn on_send(&mut self, _now: SimTime, from: ActorId, to: ActorId) -> FaultAction {
        let topo = &self.topo;
        self.net.with(|st| {
            // Messages a host sends to itself never leave the NIC.
            if from == to {
                return FaultAction::Deliver;
            }
            // A message crosses the cut (a, b) only if its endpoints sit on
            // *different* sides. Scopes may overlap — `(Rack(0), All)` is
            // the idiom for "rack 0 vs the rest" — so traffic staying
            // within one side (both endpoints in `a`) must survive.
            let crosses = |a: &Scope, b: &Scope| {
                (a.contains(topo, from) && b.contains(topo, to) && !a.contains(topo, to))
                    || (b.contains(topo, from) && a.contains(topo, to) && !a.contains(topo, from))
            };
            if st.partitions.iter().any(|(a, b)| crosses(a, b)) {
                return FaultAction::Drop;
            }
            // Destructure to let the rule iteration and the RNG borrow
            // disjoint fields.
            let NetState {
                degradations,
                corruptions,
                rng,
                ..
            } = st;
            for (src, dst, fault) in degradations.iter() {
                if !(src.contains(topo, from) && dst.contains(topo, to)) {
                    continue;
                }
                if fault.drop > 0.0 && rng.gen_bool(fault.drop) {
                    return FaultAction::Drop;
                }
                if fault.duplicate > 0.0 && rng.gen_bool(fault.duplicate) {
                    return FaultAction::Duplicate(fault.duplicate_gap);
                }
                if fault.delay > 0.0 && rng.gen_bool(fault.delay) {
                    return FaultAction::Delay(fault.delay_by);
                }
                if fault.corrupt > 0.0 && rng.gen_bool(fault.corrupt.min(1.0)) {
                    return FaultAction::Corrupt(fault.corrupt_mode);
                }
            }
            // Poisoned reporters corrupt every matching message; the rules
            // are content-blind, the engine skips uncorruptible payloads.
            for (src, dst, mode) in corruptions.iter() {
                if src.contains(topo, from) && dst.contains(topo, to) {
                    return FaultAction::Corrupt(*mode);
                }
            }
            FaultAction::Deliver
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbundle_sim::SimDuration;

    fn testbed() -> Arc<Topology> {
        Arc::new(Topology::paper_testbed())
    }

    #[test]
    fn partition_drops_cross_traffic_only() {
        let topo = testbed();
        let net = SharedNet::new(1);
        let rack0 = topo.rack_of(topo.server(0)).index();
        // Find a server outside rack 0.
        let other = (0..topo.num_servers())
            .find(|&i| topo.rack_of(topo.server(i)).index() != rack0)
            .expect("testbed has more than one rack");
        net.with(|st| st.partitions.push((Scope::Rack(rack0), Scope::All)));
        let mut inj = ChaosInjector::new(topo.clone(), net.clone());
        let now = SimTime::ZERO;
        let inside = ActorId::new(0);
        let outside = ActorId::new(other as u32);
        assert_eq!(inj.on_send(now, inside, outside), FaultAction::Drop);
        assert_eq!(inj.on_send(now, outside, inside), FaultAction::Drop);
        // Traffic staying on one side of the cut survives: self-sends,
        // intra-rack pairs, and pairs entirely outside the rack.
        assert_eq!(inj.on_send(now, inside, inside), FaultAction::Deliver);
        if let Some(peer) = (0..topo.num_servers())
            .find(|&i| i != 0 && topo.rack_of(topo.server(i)).index() == rack0)
        {
            let peer = ActorId::new(peer as u32);
            assert_eq!(inj.on_send(now, inside, peer), FaultAction::Deliver);
        }
        net.with(|st| st.partitions.clear());
        assert_eq!(inj.on_send(now, inside, outside), FaultAction::Deliver);
    }

    #[test]
    fn degradation_draws_are_probabilistic_and_deterministic() {
        let topo = testbed();
        let run = |seed| {
            let net = SharedNet::new(seed);
            net.with(|st| {
                st.degradations
                    .push((Scope::All, Scope::All, LinkFault::loss(0.5)))
            });
            let mut inj = ChaosInjector::new(topo.clone(), net);
            (0..200)
                .map(|_| inj.on_send(SimTime::ZERO, ActorId::new(0), ActorId::new(1)))
                .collect::<Vec<_>>()
        };
        let a = run(7);
        assert_eq!(a, run(7), "same seed must replay identically");
        let drops = a.iter().filter(|&&x| x == FaultAction::Drop).count();
        assert!((50..150).contains(&drops), "drops={drops}");
    }

    #[test]
    fn slow_link_delays_every_message() {
        let topo = testbed();
        let net = SharedNet::new(3);
        let extra = SimDuration::from_millis(4);
        net.with(|st| {
            st.degradations
                .push((Scope::All, Scope::All, LinkFault::slow(extra)))
        });
        let mut inj = ChaosInjector::new(topo, net);
        assert_eq!(
            inj.on_send(SimTime::ZERO, ActorId::new(0), ActorId::new(1)),
            FaultAction::Delay(extra)
        );
    }
}

//! # vbundle-chaos — deterministic fault injection for the v-Bundle stack
//!
//! The paper's protocols (Pastry routing, Scribe trees, tree-based
//! aggregation, load shuffling with live migration) all claim to tolerate
//! churn; this crate is the harness that makes those claims testable. It
//! has three parts:
//!
//! 1. **Fault plans** ([`FaultPlan`]) — timestamped schedules of node
//!    crashes/restarts, rack- or pod-level partitions and probabilistic
//!    link degradations (drop / delay / duplicate). Every random draw
//!    comes from the plan's own seeded RNG, so a scenario replays
//!    byte-identically.
//! 2. **Invariant checkers** ([`invariants`]) — snapshots of the overlay
//!    mid-run: ring/leaf-set consistency, Scribe trees spanning the live
//!    members, aggregation agreeing with ground truth, no VM lost or
//!    duplicated across migrations, no server over capacity.
//! 3. **Recovery metrics** ([`run_scenario`] → [`RecoveryReport`]) — how
//!    long and how many messages the overlay needed to repair after the
//!    last fault, how stale aggregates were, and how many migrations were
//!    abandoned.
//!
//! ```
//! use std::sync::Arc;
//! use vbundle_chaos::{run_scenario, FaultPlan, ScenarioSpec};
//! use vbundle_dcn::Topology;
//! use vbundle_pastry::{overlay, IdAssignment, PastryConfig};
//! use vbundle_sim::{SimDuration, SimTime};
//!
//! let topo = Arc::new(Topology::paper_testbed());
//! let config = PastryConfig {
//!     heartbeat: Some(SimDuration::from_secs(1)),
//!     ..PastryConfig::default()
//! };
//! let (mut engine, handles) =
//!     overlay::launch_null(&topo, IdAssignment::Random { seed: 7 }, config, 7);
//! engine.run_until(SimTime::from_secs(30));
//!
//! let plan = FaultPlan::new(7)
//!     .crash(SimTime::from_secs(60), handles[3].actor)
//!     .restart(SimTime::from_secs(90), handles[3].actor);
//! let spec = ScenarioSpec {
//!     name: "crash-restart".into(),
//!     check_interval: SimDuration::from_secs(1),
//!     deadline: SimDuration::from_secs(60),
//! };
//! let report = run_scenario(
//!     &mut engine,
//!     topo,
//!     plan,
//!     &spec,
//!     vbundle_chaos::check_leaf_sets,
//!     |_| true,
//!     |_| 0,
//! );
//! assert!(report.time_to_repair().is_some(), "{report}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod injector;
pub mod invariants;
mod plan;
mod runner;

pub use injector::{ChaosInjector, NetState, SharedNet};
pub use invariants::{
    check_aggregation, check_billing_conservation, check_bounded_degradation, check_capacity,
    check_entitlement_conservation, check_global_mean, check_isolation_caps, check_leaf_sets,
    check_migration_rate, check_scribe_trees, check_vm_conservation, customer_satisfaction,
    HasAggregator, Violation,
};
pub use plan::{FaultEvent, FaultKind, FaultPlan, LinkFault, Scope};
pub use runner::{run_scenario, ChaosDriver, RecoveryReport, ScenarioSpec};

//! Fault plans: timestamped, reproducible fault schedules.
//!
//! A [`FaultPlan`] is an ordered list of [`FaultEvent`]s plus the seed for
//! the link-fault RNG. Two runs of the same plan against the same workload
//! and engine seed produce byte-identical behavior — the whole point of
//! the chaos layer is that a failing scenario can be replayed exactly.

use vbundle_dcn::Topology;
use vbundle_sim::{ActorId, CorruptionMode, SimDuration, SimTime};

/// A set of servers, at the granularities the datacenter fabric fails at:
/// one host, one rack (top-of-rack switch), one pod (aggregation switch),
/// or everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// A single server (actor ids double as server indexes).
    Actor(ActorId),
    /// Every server under one top-of-rack switch.
    Rack(usize),
    /// Every server under one pod's aggregation switches.
    Pod(usize),
    /// Every server.
    All,
}

impl Scope {
    /// Whether `actor` falls inside this scope under `topo`. Actors beyond
    /// the topology's servers (harness-only actors) match only [`Scope::All`].
    pub fn contains(&self, topo: &Topology, actor: ActorId) -> bool {
        match *self {
            Scope::All => true,
            Scope::Actor(a) => a == actor,
            Scope::Rack(r) => {
                actor.index() < topo.num_servers()
                    && topo.rack_of(topo.server(actor.index())).index() == r
            }
            Scope::Pod(p) => {
                actor.index() < topo.num_servers()
                    && topo.pod_of(topo.server(actor.index())).index() == p
            }
        }
    }
}

/// Per-message fault probabilities applied to a matching link while a
/// degradation is active. Probabilities are evaluated independently in the
/// order drop → duplicate → delay, with the first hit winning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFault {
    /// Probability a message is silently discarded.
    pub drop: f64,
    /// Probability a message is delivered twice.
    pub duplicate: f64,
    /// Extra arrival gap of the duplicate copy.
    pub duplicate_gap: SimDuration,
    /// Probability a message is delayed.
    pub delay: f64,
    /// Extra latency added to delayed messages.
    pub delay_by: SimDuration,
    /// Probability a message's aggregation payload is corrupted in flight
    /// (evaluated after drop / duplicate / delay; messages without
    /// corruptible content deliver unchanged).
    pub corrupt: f64,
    /// How corrupted payloads are mutated.
    pub corrupt_mode: CorruptionMode,
}

impl LinkFault {
    /// A pure packet-loss fault.
    pub fn loss(drop: f64) -> LinkFault {
        LinkFault {
            drop,
            duplicate: 0.0,
            duplicate_gap: SimDuration::ZERO,
            delay: 0.0,
            delay_by: SimDuration::ZERO,
            corrupt: 0.0,
            corrupt_mode: CorruptionMode::Nan,
        }
    }

    /// A degraded (slow) link: every message is delayed by `extra`.
    pub fn slow(extra: SimDuration) -> LinkFault {
        LinkFault {
            delay: 1.0,
            delay_by: extra,
            ..LinkFault::loss(0.0)
        }
    }

    /// A poisoning link: each message's aggregation payload is corrupted
    /// with probability `p` using `mode`.
    pub fn poison(p: f64, mode: CorruptionMode) -> LinkFault {
        LinkFault {
            corrupt: p,
            corrupt_mode: mode,
            ..LinkFault::loss(0.0)
        }
    }

    /// Adds a duplication probability.
    pub fn with_duplicate(mut self, p: f64, gap: SimDuration) -> LinkFault {
        self.duplicate = p;
        self.duplicate_gap = gap;
        self
    }

    /// Adds a corruption probability.
    pub fn with_corruption(mut self, p: f64, mode: CorruptionMode) -> LinkFault {
        self.corrupt = p;
        self.corrupt_mode = mode;
        self
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Fail a server ([`Engine::fail`](vbundle_sim::Engine::fail)).
    Crash(ActorId),
    /// Revive a failed server
    /// ([`Engine::restart`](vbundle_sim::Engine::restart)).
    Restart(ActorId),
    /// Fail every server in one rack at once (a top-of-rack switch or PDU
    /// failure) — the fault size the survivability gates are built around.
    CrashRack(usize),
    /// Fail every server in one pod at once (an aggregation-switch or
    /// power-domain failure).
    CrashPod(usize),
    /// Start dropping all traffic between the two scopes, both directions
    /// (a switch failure); traffic within each side is unaffected.
    Partition {
        /// One side of the cut.
        a: Scope,
        /// The other side.
        b: Scope,
    },
    /// Remove every active partition.
    HealPartitions,
    /// Remove one specific partition (matched in either orientation),
    /// leaving any others in place — for scenarios that heal cuts in
    /// stages rather than all at once.
    HealPartition {
        /// One side of the cut to heal.
        a: Scope,
        /// The other side.
        b: Scope,
    },
    /// Start corrupting the aggregation payloads `node` sends, every
    /// message, with the given mutation — a poisoned reporter. The
    /// injector stays content-blind: the engine applies the mutation to
    /// messages that carry corruptible content and delivers the rest
    /// unchanged.
    CorruptAggregate {
        /// The poisoned server.
        node: ActorId,
        /// How its outgoing aggregation payloads are mutated.
        mode: CorruptionMode,
    },
    /// Remove every active corruption (both [`FaultKind::CorruptAggregate`]
    /// rules and probabilistic [`LinkFault::corrupt`] degradations stay
    /// governed by their own lists — this clears only the former).
    ClearCorruptions,
    /// Start applying per-message fault probabilities to traffic from
    /// `from` to `to` (one direction; add the mirrored event for both).
    Degrade {
        /// Sending side.
        from: Scope,
        /// Receiving side.
        to: Scope,
        /// The probabilities to apply.
        fault: LinkFault,
    },
    /// Remove every active degradation.
    ClearDegradations,
}

/// A fault at a point in simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// When the fault takes effect.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A reproducible fault schedule.
///
/// ```
/// use vbundle_chaos::FaultPlan;
/// use vbundle_sim::{ActorId, SimTime};
///
/// let plan = FaultPlan::new(7)
///     .crash(SimTime::from_secs(60), ActorId::new(3))
///     .restart(SimTime::from_secs(120), ActorId::new(3));
/// assert_eq!(plan.events().len(), 2);
/// assert_eq!(plan.last_fault_at(), Some(SimTime::from_secs(120)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the link-fault RNG (independent of the engine's seed, so a
    /// plan can be replayed against different workloads).
    pub seed: u64,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan with the given link-fault RNG seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// Appends an arbitrary event.
    pub fn event(mut self, at: SimTime, kind: FaultKind) -> FaultPlan {
        self.events.push(FaultEvent { at, kind });
        self.events.sort_by_key(|e| e.at); // stable: ties keep insert order
        self
    }

    /// Schedules a server crash.
    pub fn crash(self, at: SimTime, actor: ActorId) -> FaultPlan {
        self.event(at, FaultKind::Crash(actor))
    }

    /// Schedules a server restart.
    pub fn restart(self, at: SimTime, actor: ActorId) -> FaultPlan {
        self.event(at, FaultKind::Restart(actor))
    }

    /// Schedules a whole-rack crash.
    pub fn crash_rack(self, at: SimTime, rack: usize) -> FaultPlan {
        self.event(at, FaultKind::CrashRack(rack))
    }

    /// Schedules a whole-pod crash.
    pub fn crash_pod(self, at: SimTime, pod: usize) -> FaultPlan {
        self.event(at, FaultKind::CrashPod(pod))
    }

    /// Schedules a network partition between two scopes.
    pub fn partition(self, at: SimTime, a: Scope, b: Scope) -> FaultPlan {
        self.event(at, FaultKind::Partition { a, b })
    }

    /// Schedules the healing of all partitions.
    pub fn heal(self, at: SimTime) -> FaultPlan {
        self.event(at, FaultKind::HealPartitions)
    }

    /// Schedules the healing of one specific partition.
    pub fn heal_partition(self, at: SimTime, a: Scope, b: Scope) -> FaultPlan {
        self.event(at, FaultKind::HealPartition { a, b })
    }

    /// Schedules a server to start poisoning its aggregation reports.
    pub fn corrupt_aggregate(self, at: SimTime, node: ActorId, mode: CorruptionMode) -> FaultPlan {
        self.event(at, FaultKind::CorruptAggregate { node, mode })
    }

    /// Schedules the removal of all poisoned reporters.
    pub fn clear_corruptions(self, at: SimTime) -> FaultPlan {
        self.event(at, FaultKind::ClearCorruptions)
    }

    /// Schedules a one-directional link degradation.
    pub fn degrade(self, at: SimTime, from: Scope, to: Scope, fault: LinkFault) -> FaultPlan {
        self.event(at, FaultKind::Degrade { from, to, fault })
    }

    /// Schedules a symmetric link degradation (both directions).
    pub fn degrade_both(self, at: SimTime, a: Scope, b: Scope, fault: LinkFault) -> FaultPlan {
        self.degrade(at, a, b, fault).degrade(at, b, a, fault)
    }

    /// Schedules the removal of all degradations.
    pub fn clear_degradations(self, at: SimTime) -> FaultPlan {
        self.event(at, FaultKind::ClearDegradations)
    }

    /// The events, ordered by time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// When the last scheduled fault fires.
    pub fn last_fault_at(&self) -> Option<SimTime> {
        self.events.last().map(|e| e.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn events_sort_by_time() {
        let plan = FaultPlan::new(1)
            .restart(SimTime::from_secs(9), ActorId::new(0))
            .crash(SimTime::from_secs(3), ActorId::new(0));
        assert!(matches!(plan.events()[0].kind, FaultKind::Crash(_)));
        assert_eq!(plan.last_fault_at(), Some(SimTime::from_secs(9)));
    }

    #[test]
    fn domain_crash_builders_schedule_in_order() {
        let plan = FaultPlan::new(2)
            .crash_pod(SimTime::from_secs(40), 0)
            .crash_rack(SimTime::from_secs(20), 3);
        assert_eq!(plan.events()[0].kind, FaultKind::CrashRack(3));
        assert_eq!(plan.events()[1].kind, FaultKind::CrashPod(0));
        assert_eq!(plan.last_fault_at(), Some(SimTime::from_secs(40)));
    }

    #[test]
    fn scope_matches_topology_levels() {
        let topo = Arc::new(Topology::paper_testbed());
        let first = ActorId::new(0);
        let rack = topo.rack_of(topo.server(0)).index();
        let pod = topo.pod_of(topo.server(0)).index();
        assert!(Scope::All.contains(&topo, first));
        assert!(Scope::Actor(first).contains(&topo, first));
        assert!(!Scope::Actor(first).contains(&topo, ActorId::new(1)));
        assert!(Scope::Rack(rack).contains(&topo, first));
        assert!(Scope::Pod(pod).contains(&topo, first));
        // A harness actor beyond the servers matches only All.
        let outside = ActorId::new(topo.num_servers() as u32 + 5);
        assert!(Scope::All.contains(&topo, outside));
        assert!(!Scope::Rack(rack).contains(&topo, outside));
    }
}

//! Chaos tests for the spot market: priced cross-tenant leases commit
//! under per-tenant policy, the double-entry billing ledger stays
//! conserved through lender crashes and arbitrary crash timings, lease
//! renewals re-quote at the *current* spot price instead of silently
//! extending stale terms, and every scenario replays byte-identically
//! per seed.

use std::sync::Arc;

use proptest::prelude::*;
use vbundle_chaos::{
    check_billing_conservation, check_capacity, check_entitlement_conservation,
    check_isolation_caps, ChaosDriver, FaultPlan,
};
use vbundle_core::{
    reconcile, Cluster, CustomerId, ResourceSpec, ResourceVector, SpotMarketConfig, VBundleConfig,
    VmId, VmRecord,
};
use vbundle_dcn::{Bandwidth, Topology};
use vbundle_pastry::PastryConfig;
use vbundle_scribe::ScribeConfig;
use vbundle_sim::{ActorId, SimDuration, SimTime};
use vbundle_trade::LeaseRole;

fn bw(mbps: f64) -> Bandwidth {
    Bandwidth::from_mbps(mbps)
}

/// Four servers, one pod, two trading tenants: customer 0 owns a single
/// starved VM on server 0 (no sibling anywhere, so intra-bundle trading
/// can never help it) and customer 1 owns a fat idle VM on server 1 —
/// the only possible counterparty, reachable only through the priced
/// spot market. Background tenant 2 keeps the overlay non-trivial.
fn build_market_cluster(seed: u64) -> (Cluster, VmId) {
    let topo = Arc::new(
        Topology::builder()
            .pods(1)
            .racks_per_pod(2)
            .servers_per_rack(2)
            .build(),
    );
    let pastry = PastryConfig {
        heartbeat: Some(SimDuration::from_secs(1)),
        maintenance: Some(SimDuration::from_secs(10)),
        ..PastryConfig::default()
    };
    let mut cluster = Cluster::builder(topo)
        .pastry(pastry)
        .scribe(ScribeConfig::default().with_probe_interval(SimDuration::from_secs(3)))
        .vbundle(
            VBundleConfig::default()
                .with_update_interval(SimDuration::from_secs(5))
                .with_rebalance_interval(SimDuration::from_secs(1000))
                .with_bundle_trading(true)
                .with_lease_duration(SimDuration::from_secs(120))
                .with_spot_market(SpotMarketConfig::default()),
        )
        .seed(seed)
        .build();
    let hot = cluster.alloc_vm_id();
    let mut vm = VmRecord::new(
        hot,
        CustomerId(0),
        ResourceSpec::bandwidth(bw(100.0), bw(100.0)),
    );
    vm.demand = ResourceVector::bandwidth_only(bw(300.0));
    cluster.install_vm(cluster.topo.server(0), vm);
    let idle = cluster.alloc_vm_id();
    let mut vm = VmRecord::new(
        idle,
        CustomerId(1),
        ResourceSpec::bandwidth(bw(200.0), bw(200.0)),
    );
    vm.demand = ResourceVector::bandwidth_only(bw(2.0));
    cluster.install_vm(cluster.topo.server(1), vm);
    // Background tenant with zero spare (demand == reservation), so it
    // neither borrows nor can be picked as a seller: the fat idle VM on
    // server 1 is deterministically the only possible lender.
    for server in 2..cluster.num_servers() {
        let id = cluster.alloc_vm_id();
        let mut vm = VmRecord::new(
            id,
            CustomerId(2),
            ResourceSpec::bandwidth(bw(50.0), bw(50.0)),
        );
        vm.demand = ResourceVector::bandwidth_only(bw(50.0));
        cluster.install_vm(cluster.topo.server(server), vm);
    }
    cluster.reindex();
    (cluster, hot)
}

/// Deterministic digest of everything the market touched: lease halves
/// with their priced terms, billing books and market counters. Two
/// replays of the same seeded scenario must agree byte for byte.
fn market_digest(cluster: &Cluster) -> String {
    let mut s = String::new();
    for i in 0..cluster.num_servers() {
        let ctrl = cluster.controller(i);
        let m = &ctrl.market_stats;
        s.push_str(&format!(
            "server {i}: asks {} trades {} rej(price {} budget {} cap {}) requotes {} reversals {}\n",
            m.spot_asks.get(),
            m.spot_trades.get(),
            m.spot_rejected_price.get(),
            m.spot_rejected_budget.get(),
            m.spot_rejected_cap.get(),
            m.requotes.get(),
            m.billing_reversals.get(),
        ));
        for h in ctrl.trade_book().halves() {
            s.push_str(&format!(
                "  lease {} {:?} cust {} buyer {} {:.3} Mbps @{:.6} [{} .. {}]\n",
                h.lease.id,
                h.role,
                h.lease.customer.0,
                h.lease.buyer.0,
                h.lease.amount.bandwidth.as_mbps(),
                h.lease.price,
                h.lease.starts,
                h.lease.expires
            ));
        }
        for e in ctrl.billing().entries() {
            s.push_str(&format!(
                "  bill {} {:?} {}->{} gross {:.6} fee {:.6}\n",
                e.lease, e.side, e.payer, e.payee, e.gross, e.fee
            ));
        }
    }
    s
}

fn hot_grant(cluster: &Cluster, hot: VmId) -> f64 {
    cluster
        .controller(0)
        .allocations()
        .iter()
        .zip(cluster.controller(0).vms())
        .find(|(_, vm)| vm.id == hot)
        .map(|(a, _)| a.granted.as_mbps())
        .unwrap()
}

/// Asserts every market invariant that must hold at any instant,
/// regardless of what faults are in flight.
fn assert_conserved(cluster: &Cluster, when: &str) {
    let billing = check_billing_conservation(&cluster.engine);
    assert!(billing.is_empty(), "billing broken {when}: {billing:#?}");
    let entitle = check_entitlement_conservation(&cluster.engine);
    assert!(
        entitle.is_empty(),
        "entitlement broken {when}: {entitle:#?}"
    );
    let caps = check_isolation_caps(&cluster.engine, SpotMarketConfig::default().isolation_cap);
    assert!(caps.is_empty(), "isolation cap broken {when}: {caps:#?}");
    assert!(check_capacity(&cluster.engine).is_empty());
}

#[test]
fn spot_trade_commits_and_bills() {
    let t = SimTime::from_secs;
    let (mut cluster, hot) = build_market_cluster(20120618);
    cluster.run_until(t(90));

    // The starved tenant bought entitlement across the tenant boundary.
    let priced: Vec<_> = cluster
        .controller(0)
        .trade_book()
        .halves()
        .filter(|h| h.role == LeaseRole::Borrower && h.lease.is_priced())
        .collect();
    assert!(!priced.is_empty(), "no priced lease committed by t=90");
    assert!(priced.iter().all(|h| h.lease.cross_tenant()));
    assert!(
        hot_grant(&cluster, hot) > 100.0 + 1.0,
        "spot lease did not raise the hot VM's grant"
    );

    // Both sides billed, books conserved, money went buyer -> seller.
    let trades: u64 = (0..cluster.num_servers())
        .map(|i| cluster.controller(i).market_stats.spot_trades.get())
        .sum();
    assert!(trades >= 1);
    let rec = reconcile((0..cluster.num_servers()).map(|i| cluster.controller(i).billing()));
    assert!(rec.balanced(), "{:#?}", rec.violations);
    assert!(rec.total_spend > 0.0);
    assert!(rec.total_fees > 0.0);
    assert_conserved(&cluster, "after trading");
}

/// Runs the full fault scenario: trade, then crash the lender server at
/// `crash_at`, then let the repair protocols settle. Conservation is
/// asserted throughout; the digest is returned for replay comparison.
fn run_lender_crash(seed: u64, crash_at: u64) -> String {
    let t = SimTime::from_secs;
    let (mut cluster, _hot) = build_market_cluster(seed);
    cluster.run_until(t(55));
    assert_conserved(&cluster, "before fault");

    let plan = FaultPlan::new(seed).crash(t(crash_at), ActorId::new(1));
    let topo = cluster.topo.clone();
    let mut driver = ChaosDriver::install(&mut cluster.engine, topo, plan);
    driver.run_until(&mut cluster.engine, t(crash_at.max(55) + 100));
    assert_conserved(&cluster, "after lender crash");
    market_digest(&cluster)
}

#[test]
fn lender_crash_conserves_billing() {
    let t = SimTime::from_secs;
    let (mut cluster, hot) = build_market_cluster(20120618);
    cluster.run_until(t(90));
    let rec = reconcile((0..cluster.num_servers()).map(|i| cluster.controller(i).billing()));
    assert!(rec.total_spend > 0.0, "no trade to crash");

    let plan = FaultPlan::new(20120618).crash(t(100), ActorId::new(1));
    let topo = cluster.topo.clone();
    let mut driver = ChaosDriver::install(&mut cluster.engine, topo, plan);
    driver.run_until(&mut cluster.engine, t(200));

    // The borrower dropped its credit (bounced renewals), the shaper
    // ceiling shrank back, and — crucially — the dead lender's billing
    // book still pairs every surviving spend entry: a crash must never
    // turn a tenant's payment into an orphaned charge.
    assert_eq!(cluster.active_leases(), 0, "credit from a dead lender");
    assert!(hot_grant(&cluster, hot) <= 100.0 + 1e-6);
    assert_conserved(&cluster, "after crash");
    let rec = reconcile((0..cluster.num_servers()).map(|i| cluster.controller(i).billing()));
    assert!(rec.balanced(), "{:#?}", rec.violations);
    assert!(rec.total_spend > 0.0, "crash erased the billing history");
}

#[test]
fn renewal_requotes_at_current_price() {
    let t = SimTime::from_secs;
    let (mut cluster, _hot) = build_market_cluster(7);
    cluster.run_until(t(90));
    let original: Vec<f64> = cluster
        .controller(0)
        .trade_book()
        .halves()
        .filter(|h| h.lease.is_priced())
        .map(|h| h.lease.price)
        .collect();
    assert!(!original.is_empty(), "no priced lease by t=90");
    let p0 = original[0];

    // The market moves: the lender's price index learns a much higher
    // clearing level between mint and renewal.
    for _ in 0..64 {
        cluster.controller_mut(1).observe_spot_price(3.0);
    }
    let quote_floor = 2.5; // well above p0 ~= 1.1, below the 3.0 plateau

    // Ride through the renewal window (lease 120 s, re-quote within the
    // last 2 update intervals). The replacement must carry the *current*
    // quote — a renewal that extended the old lease would keep paying p0
    // long after the market repriced, exactly the bug this guards.
    cluster.run_until(t(260));
    let requoted: Vec<_> = cluster
        .controller(0)
        .trade_book()
        .halves()
        .filter(|h| h.lease.is_priced() && h.lease.starts > SimTime::ZERO)
        .collect();
    assert!(
        !requoted.is_empty(),
        "no replacement lease minted through renewal"
    );
    for h in &requoted {
        assert!(
            h.lease.price > quote_floor,
            "stale price survived renewal: replacement at {:.3}, index moved to ~3.0 (p0 {:.3})",
            h.lease.price,
            p0
        );
    }
    let requotes: u64 = (0..cluster.num_servers())
        .map(|i| cluster.controller(i).market_stats.requotes.get())
        .sum();
    assert!(requotes >= 1);
    assert_conserved(&cluster, "after renewal re-quote");
}

#[test]
fn lender_crash_replays_byte_identically() {
    let a = run_lender_crash(42, 100);
    let b = run_lender_crash(42, 100);
    assert_eq!(a, b, "same seed must replay byte-identically");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Billing stays double-entry conserved no matter where the lender
    /// crash lands relative to mint, renewal and expiry — and each
    /// interleaving replays byte-identically.
    #[test]
    fn billing_conserved_across_crash_interleavings(
        seed in 1u64..500,
        crash_at in 60u64..180,
    ) {
        let a = run_lender_crash(seed, crash_at);
        let b = run_lender_crash(seed, crash_at);
        prop_assert_eq!(a, b);
    }
}

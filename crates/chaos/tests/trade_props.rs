//! Chaos tests for the bundle-trading ledger: a lender crash mid-lease
//! must revert the borrower's credit, keep the cluster-wide entitlement
//! conserved, and shrink the borrower's shaper ceiling back to its static
//! contract — all byte-identically reproducible per seed.

use std::sync::Arc;

use vbundle_chaos::{check_capacity, check_entitlement_conservation, ChaosDriver, FaultPlan};
use vbundle_core::{
    Cluster, CustomerId, ResourceSpec, ResourceVector, VBundleConfig, VmId, VmRecord,
};
use vbundle_dcn::{Bandwidth, Topology};
use vbundle_pastry::PastryConfig;
use vbundle_scribe::ScribeConfig;
use vbundle_sim::{ActorId, SimDuration, SimTime};

fn bw(mbps: f64) -> Bandwidth {
    Bandwidth::from_mbps(mbps)
}

/// Four servers, one customer: a starved fixed-size VM on server 0 and a
/// fat idle sibling on server 1 (the only possible lender), with fast
/// protocol timers so leases commit and failures are detected quickly.
fn build_trading_cluster(seed: u64) -> (Cluster, VmId) {
    let topo = Arc::new(
        Topology::builder()
            .pods(1)
            .racks_per_pod(2)
            .servers_per_rack(2)
            .build(),
    );
    let pastry = PastryConfig {
        heartbeat: Some(SimDuration::from_secs(1)),
        maintenance: Some(SimDuration::from_secs(10)),
        ..PastryConfig::default()
    };
    let mut cluster = Cluster::builder(topo)
        .pastry(pastry)
        .scribe(ScribeConfig::default().with_probe_interval(SimDuration::from_secs(3)))
        .vbundle(
            VBundleConfig::default()
                .with_update_interval(SimDuration::from_secs(5))
                .with_rebalance_interval(SimDuration::from_secs(1000))
                .with_bundle_trading(true)
                .with_lease_duration(SimDuration::from_secs(300)),
        )
        .seed(seed)
        .build();
    let hot = cluster.alloc_vm_id();
    let mut vm = VmRecord::new(
        hot,
        CustomerId(0),
        ResourceSpec::bandwidth(bw(100.0), bw(100.0)),
    );
    vm.demand = ResourceVector::bandwidth_only(bw(300.0));
    cluster.install_vm(cluster.topo.server(0), vm);
    let idle = cluster.alloc_vm_id();
    let mut vm = VmRecord::new(
        idle,
        CustomerId(0),
        ResourceSpec::bandwidth(bw(200.0), bw(200.0)),
    );
    vm.demand = ResourceVector::bandwidth_only(bw(2.0));
    cluster.install_vm(cluster.topo.server(1), vm);
    // Unrelated background tenants so the overlay is not trivially tiny.
    for server in 2..cluster.num_servers() {
        let id = cluster.alloc_vm_id();
        let mut vm = VmRecord::new(
            id,
            CustomerId(1),
            ResourceSpec::bandwidth(bw(50.0), bw(50.0)),
        );
        vm.demand = ResourceVector::bandwidth_only(bw(20.0));
        cluster.install_vm(cluster.topo.server(server), vm);
    }
    cluster.reindex();
    (cluster, hot)
}

/// Deterministic digest of everything trading touched: lease books,
/// counters and the hot VM's final grant. Two replays of the same seeded
/// scenario must agree byte for byte.
fn trade_digest(cluster: &Cluster, hot: VmId) -> String {
    let mut s = String::new();
    for i in 0..cluster.num_servers() {
        let ctrl = cluster.controller(i);
        let book = ctrl.trade_book();
        s.push_str(&format!("server {i}: stats {:?}\n", book.stats));
        for h in book.halves() {
            s.push_str(&format!(
                "  lease {} {:?} {}->{} {:.3} Mbps until {}\n",
                h.lease.id,
                h.role,
                h.lease.lender,
                h.lease.borrower,
                h.lease.amount.bandwidth.as_mbps(),
                h.lease.expires
            ));
        }
        for (vm, a) in ctrl.vms().iter().zip(ctrl.allocations()) {
            if vm.id == hot {
                s.push_str(&format!("  hot grant {:.6}\n", a.granted.as_mbps()));
            }
        }
    }
    s
}

fn run_lender_crash(seed: u64) -> (String, f64, f64) {
    let t = SimTime::from_secs;
    let (mut cluster, hot) = build_trading_cluster(seed);

    // Let the marketplace commit leases.
    cluster.run_until(t(90));
    assert!(cluster.active_leases() > 0, "no lease committed by t=90");
    let granted_leased = cluster
        .controller(0)
        .allocations()
        .iter()
        .zip(cluster.controller(0).vms())
        .find(|(_, vm)| vm.id == hot)
        .map(|(a, _)| a.granted.as_mbps())
        .unwrap();
    assert!(
        granted_leased > 100.0 + 1.0,
        "lease did not raise the hot VM's grant: {granted_leased}"
    );
    assert!(
        check_entitlement_conservation(&cluster.engine).is_empty(),
        "conservation broken before any fault"
    );

    // Crash the only lender mid-lease.
    let plan = FaultPlan::new(seed).crash(t(100), ActorId::new(1));
    let topo = cluster.topo.clone();
    let mut driver = ChaosDriver::install(&mut cluster.engine, topo, plan);

    // The borrower notices via failed renewals / failure detection and
    // reverts its credit well before the 300 s lease would expire.
    driver.run_until(&mut cluster.engine, t(180));
    let open = check_entitlement_conservation(&cluster.engine);
    assert!(
        open.is_empty(),
        "conservation broken after crash: {open:#?}"
    );
    assert!(check_capacity(&cluster.engine).is_empty());
    assert_eq!(
        cluster.active_leases(),
        0,
        "borrower kept credit from a dead lender"
    );
    let granted_after = cluster
        .controller(0)
        .allocations()
        .iter()
        .zip(cluster.controller(0).vms())
        .find(|(_, vm)| vm.id == hot)
        .map(|(a, _)| a.granted.as_mbps())
        .unwrap();
    assert!(
        granted_after <= 100.0 + 1e-6,
        "shaper ceiling did not shrink back: {granted_after}"
    );
    (trade_digest(&cluster, hot), granted_leased, granted_after)
}

#[test]
fn lender_crash_reverts_lease_and_conserves() {
    let (_, leased, after) = run_lender_crash(20120618);
    assert!(leased > after);
}

#[test]
fn lender_crash_replays_byte_identically() {
    let (a, _, _) = run_lender_crash(42);
    let (b, _, _) = run_lender_crash(42);
    assert_eq!(a, b, "same seed must replay byte-identically");
}

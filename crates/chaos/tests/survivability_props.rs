//! Survivability properties: whole-rack crashes with staggered restarts
//! must reconverge the overlay, and the survivable placement policy must
//! bound every tenant's degradation under any single-rack loss — while
//! the paper's locality-first placement provably cannot.

use std::collections::BTreeSet;
use std::sync::Arc;

use vbundle_chaos::{
    check_bounded_degradation, check_leaf_sets, check_scribe_trees, check_vm_conservation,
    customer_satisfaction, ChaosDriver, FaultPlan,
};
use vbundle_core::{
    Cluster, ClusterModel, Customer, CustomerId, PlacementPolicy, ResourceSpec, ResourceVector,
    VBundleConfig, VmId, VmRecord,
};
use vbundle_dcn::{Bandwidth, ServerId, Topology};
use vbundle_pastry::overlay::topology_aware_ids;
use vbundle_pastry::PastryConfig;
use vbundle_scribe::ScribeConfig;
use vbundle_sim::{ActorId, SimDuration, SimTime};

fn bw(mbps: f64) -> Bandwidth {
    Bandwidth::from_mbps(mbps)
}

/// Paper testbed with fast protocol timers (same shape as chaos_props).
fn build_fast_cluster(seed: u64) -> (Cluster, Vec<VmId>) {
    let topo = Arc::new(Topology::paper_testbed());
    let pastry = PastryConfig {
        heartbeat: Some(SimDuration::from_secs(1)),
        maintenance: Some(SimDuration::from_secs(10)),
        ..PastryConfig::default()
    };
    let mut cluster = Cluster::builder(topo)
        .pastry(pastry)
        .scribe(ScribeConfig::default().with_probe_interval(SimDuration::from_secs(3)))
        .vbundle(
            VBundleConfig::default()
                .with_update_interval(SimDuration::from_secs(5))
                .with_rebalance_interval(SimDuration::from_secs(1000)),
        )
        .seed(seed)
        .build();
    let demand = bw(80.0);
    let mut vms = Vec::new();
    for server in 0..cluster.num_servers() {
        let id = cluster.alloc_vm_id();
        let mut vm = VmRecord::new(
            id,
            CustomerId(server as u32 % 3),
            ResourceSpec::fixed(ResourceVector::bandwidth_only(demand)),
        );
        vm.demand = ResourceVector::bandwidth_only(demand);
        cluster.install_vm(cluster.topo.server(server), vm);
        vms.push(id);
    }
    cluster.run_until(SimTime::from_secs(60));
    (cluster, vms)
}

/// Losing one top-of-rack switch takes a whole rack down at once; ops
/// brings its servers back one at a time. The overlay must absorb both
/// the correlated crash and the staggered rejoin: leaf sets and Scribe
/// trees reconverge, and no VM is lost or duplicated.
#[test]
fn rack_crash_with_staggered_restarts_reconverges() {
    let t = SimTime::from_secs;
    let (mut cluster, vms) = build_fast_cluster(11);
    let rack0: Vec<usize> = (0..cluster.num_servers())
        .filter(|&s| cluster.topo.rack_of(cluster.topo.server(s)).index() == 0)
        .collect();
    assert!(rack0.len() >= 3, "rack 0 must be a real blast radius");
    let mut plan = FaultPlan::new(11).crash_rack(t(70), 0);
    for (i, &s) in rack0.iter().enumerate() {
        plan = plan.restart(t(100 + 10 * i as u64), ActorId::new(s as u32));
    }
    let topo = cluster.topo.clone();
    let mut driver = ChaosDriver::install(&mut cluster.engine, topo, plan);

    let deadline = t(400);
    let mut now = t(100 + 10 * rack0.len() as u64 + 20);
    let mut open = Vec::new();
    while now <= deadline {
        driver.run_until(&mut cluster.engine, now);
        open = check_leaf_sets(&cluster.engine);
        open.extend(check_scribe_trees(&cluster.engine));
        open.extend(check_vm_conservation(&cluster.engine, &vms));
        if open.is_empty() {
            break;
        }
        now += SimDuration::from_secs(5);
    }
    assert!(
        open.is_empty(),
        "overlay did not reconverge after rack crash + staggered restarts: {open:#?}"
    );
}

const TENANTS: u32 = 3;
const VMS_PER_TENANT: usize = 4;
const VM_MBPS: f64 = 100.0;

/// Offline-places `TENANTS × VMS_PER_TENANT` equal VMs with `policy` on a
/// 2-pod × 2-rack × 2-server fabric, then seeds a protocol cluster with
/// the resulting assignment (backup carve-outs included) so the chaos
/// driver can crash domains under it.
fn placed_cluster(policy: PlacementPolicy, seed: u64) -> (Cluster, Vec<(VmRecord, ServerId)>) {
    let topo = Arc::new(
        Topology::builder()
            .pods(2)
            .racks_per_pod(2)
            .servers_per_rack(2)
            .build(),
    );
    let ids = topology_aware_ids(&topo);
    let mut model = ClusterModel::new(
        Arc::clone(&topo),
        ids,
        ResourceVector::bandwidth_only(bw(1000.0)),
    );
    let mut cluster = Cluster::builder(Arc::clone(&topo))
        .vbundle(
            VBundleConfig::default()
                .with_update_interval(SimDuration::from_secs(5))
                .with_rebalance_interval(SimDuration::from_secs(1000)),
        )
        .seed(seed)
        .build();

    let mut placements = Vec::new();
    for c in 0..TENANTS {
        let customer = Customer::new(CustomerId(c), format!("tenant-{c}"));
        for _ in 0..VMS_PER_TENANT {
            let id = cluster.alloc_vm_id();
            let mut vm = VmRecord::new(
                id,
                customer.id,
                ResourceSpec::fixed(ResourceVector::bandwidth_only(bw(VM_MBPS))),
            );
            vm.demand = ResourceVector::bandwidth_only(bw(VM_MBPS));
            let host = match policy {
                PlacementPolicy::Survivable {
                    max_frac_per_domain,
                    backup,
                } => model.place_survivable(customer.key, vm, max_frac_per_domain, backup),
                _ => model.place_vbundle(customer.key, vm),
            }
            .expect("fabric has room for every VM");
            placements.push((vm, host));
        }
    }
    for (vm, host) in &placements {
        cluster.install_vm(*host, *vm);
    }
    for s in 0..topo.num_servers() {
        let server = topo.server(s);
        let backup = model.backup_reserved(server);
        if backup.bandwidth.as_mbps() > 0.0 {
            cluster.install_backup(server, backup);
        }
    }
    cluster.reindex();
    cluster.run_until(SimTime::from_secs(60));
    (cluster, placements)
}

/// The failure mode that motivates the survivability layer: the paper's
/// locality-first walk packs a tenant around its root, so one rack loss
/// zeroes that tenant outright.
#[test]
fn plain_vbundle_zeroes_a_tenant_on_rack_crash() {
    let (mut cluster, placements) = placed_cluster(PlacementPolicy::VBundle, 23);
    let topo = cluster.topo.clone();
    let t0_racks: BTreeSet<usize> = placements
        .iter()
        .filter(|(vm, _)| vm.customer.0 == 0)
        .map(|(_, s)| topo.rack_of(*s).index())
        .collect();
    assert_eq!(
        t0_racks.len(),
        1,
        "locality placement packs tenant 0 into one rack: {t0_racks:?}"
    );
    let rack = *t0_racks.iter().next().expect("tenant 0 has VMs");

    let baseline = customer_satisfaction(&cluster.engine);
    assert!(
        baseline.values().all(|&s| s > 0.0),
        "every tenant starts satisfied: {baseline:?}"
    );
    let plan = FaultPlan::new(23).crash_rack(SimTime::from_secs(70), rack);
    let mut driver = ChaosDriver::install(&mut cluster.engine, topo, plan);
    driver.run_until(&mut cluster.engine, SimTime::from_secs(71));

    let open = check_bounded_degradation(&cluster.engine, &baseline, 0.45);
    assert!(
        open.iter().any(|v| v.contains("customer 0")),
        "tenant 0 should have broken the degradation floor: {open:#?}"
    );
    let sat = customer_satisfaction(&cluster.engine);
    assert_eq!(
        sat.get(&0).copied().unwrap_or(0.0),
        0.0,
        "tenant 0 is fully dark after losing its rack"
    );
}

/// The survivability contract, checked adversarially: whichever single
/// rack dies, every tenant placed under `Survivable { 0.5, 0.25 }` keeps
/// at least 45 % of its pre-fault satisfied demand.
#[test]
fn survivable_placement_bounds_degradation_under_any_rack_crash() {
    let policy = PlacementPolicy::Survivable {
        max_frac_per_domain: 0.5,
        backup: 0.25,
    };
    let num_racks = 4;
    for rack in 0..num_racks {
        let (mut cluster, _placements) = placed_cluster(policy, 29);
        let baseline = customer_satisfaction(&cluster.engine);
        assert_eq!(baseline.len(), TENANTS as usize);
        let topo = cluster.topo.clone();
        let plan = FaultPlan::new(29).crash_rack(SimTime::from_secs(70), rack);
        let mut driver = ChaosDriver::install(&mut cluster.engine, topo, plan);
        driver.run_until(&mut cluster.engine, SimTime::from_secs(71));
        let open = check_bounded_degradation(&cluster.engine, &baseline, 0.45);
        assert!(
            open.is_empty(),
            "rack {rack} crash broke the degradation floor: {open:#?}"
        );
    }
}

//! Property: for *any* fault plan of fewer-than-quorum crashes, once the
//! network quiesces the overlay has repaired itself — every Scribe tree
//! spans exactly the live members and the aggregated bandwidth demand
//! equals the ground-truth sum over the survivors.

use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;
use vbundle_chaos::{
    check_aggregation, check_leaf_sets, check_scribe_trees, ChaosDriver, FaultPlan,
};
use vbundle_core::{
    bw_demand_topic, Cluster, CustomerId, ResourceSpec, ResourceVector, VBundleConfig, VmRecord,
};
use vbundle_dcn::{Bandwidth, Topology};
use vbundle_pastry::PastryConfig;
use vbundle_scribe::ScribeConfig;
use vbundle_sim::{ActorId, SimDuration, SimTime};

/// Paper testbed (15 servers) with fast protocol timers so detection,
/// tree repair and aggregation all play out within a short settle window.
fn build_cluster(seed: u64) -> Cluster {
    let topo = Arc::new(Topology::paper_testbed());
    let pastry = PastryConfig {
        heartbeat: Some(SimDuration::from_secs(1)),
        maintenance: Some(SimDuration::from_secs(10)),
        ..PastryConfig::default()
    };
    let mut cluster = Cluster::builder(topo)
        .pastry(pastry)
        .scribe(ScribeConfig::default().with_probe_interval(SimDuration::from_secs(3)))
        .vbundle(
            VBundleConfig::default()
                .with_update_interval(SimDuration::from_secs(5))
                .with_rebalance_interval(SimDuration::from_secs(1000)),
        )
        .seed(seed)
        .build();
    let demand = Bandwidth::from_mbps(80.0);
    for server in 0..cluster.num_servers() {
        let id = cluster.alloc_vm_id();
        let mut vm = VmRecord::new(
            id,
            CustomerId(server as u32 % 3),
            ResourceSpec::fixed(ResourceVector::bandwidth_only(demand)),
        );
        vm.demand = ResourceVector::bandwidth_only(demand);
        cluster.install_vm(cluster.topo.server(server), vm);
    }
    cluster.run_until(SimTime::from_secs(60));
    cluster
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn sub_quorum_crashes_always_converge(
        picks in vec(0usize..15, 1..=4),
        seed in 1u64..500,
    ) {
        let mut crashes: Vec<usize> = picks;
        crashes.sort_unstable();
        crashes.dedup();
        prop_assume!(crashes.len() < 15 / 2); // fewer than a quorum

        let mut cluster = build_cluster(seed);
        // Stagger the crashes over a few seconds: correlated and
        // independent failures are both instances of this plan shape.
        let mut plan = FaultPlan::new(seed);
        for (i, &server) in crashes.iter().enumerate() {
            let at = SimTime::from_secs(70 + (i as u64 * 7) % 20);
            plan = plan.crash(at, ActorId::new(server as u32));
        }

        let topo = cluster.topo.clone();
        let mut driver = ChaosDriver::install(&mut cluster.engine, topo, plan);

        // Play all faults, then give the repair protocols a settle
        // window, checking every 5 simulated seconds.
        let deadline = SimTime::from_secs(240);
        let mut t = SimTime::from_secs(100);
        let mut open = Vec::new();
        while t <= deadline {
            driver.run_until(&mut cluster.engine, t);
            open = check_leaf_sets(&cluster.engine);
            open.extend(check_scribe_trees(&cluster.engine));
            open.extend(check_aggregation(&cluster.engine, bw_demand_topic(), 1e-6));
            if open.is_empty() {
                break;
            }
            t += SimDuration::from_secs(5);
        }
        prop_assert!(
            open.is_empty(),
            "overlay did not converge after crashing {crashes:?} (seed {seed}): {open:#?}"
        );
    }
}

//! Property: for *any* fault plan of fewer-than-quorum crashes, once the
//! network quiesces the overlay has repaired itself — every Scribe tree
//! spans exactly the live members and the aggregated bandwidth demand
//! equals the ground-truth sum over the survivors.

use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;
use vbundle_chaos::{
    check_aggregation, check_capacity, check_leaf_sets, check_scribe_trees, check_vm_conservation,
    ChaosDriver, FaultPlan, LinkFault, Scope,
};
use vbundle_core::{
    bw_demand_topic, Cluster, CustomerId, ResourceSpec, ResourceVector, VBundleConfig, VmId,
    VmRecord,
};
use vbundle_dcn::{Bandwidth, Topology};
use vbundle_pastry::PastryConfig;
use vbundle_scribe::ScribeConfig;
use vbundle_sim::{ActorId, SimDuration, SimTime};

/// Paper testbed (15 servers) with fast protocol timers so detection,
/// tree repair and aggregation all play out within a short settle window.
fn build_cluster(seed: u64) -> (Cluster, Vec<VmId>) {
    let topo = Arc::new(Topology::paper_testbed());
    let pastry = PastryConfig {
        heartbeat: Some(SimDuration::from_secs(1)),
        maintenance: Some(SimDuration::from_secs(10)),
        ..PastryConfig::default()
    };
    let mut cluster = Cluster::builder(topo)
        .pastry(pastry)
        .scribe(ScribeConfig::default().with_probe_interval(SimDuration::from_secs(3)))
        .vbundle(
            VBundleConfig::default()
                .with_update_interval(SimDuration::from_secs(5))
                .with_rebalance_interval(SimDuration::from_secs(1000)),
        )
        .seed(seed)
        .build();
    let demand = Bandwidth::from_mbps(80.0);
    let mut vms = Vec::new();
    for server in 0..cluster.num_servers() {
        let id = cluster.alloc_vm_id();
        let mut vm = VmRecord::new(
            id,
            CustomerId(server as u32 % 3),
            ResourceSpec::fixed(ResourceVector::bandwidth_only(demand)),
        );
        vm.demand = ResourceVector::bandwidth_only(demand);
        cluster.install_vm(cluster.topo.server(server), vm);
        vms.push(id);
    }
    cluster.run_until(SimTime::from_secs(60));
    (cluster, vms)
}

/// A two-minute window in which roughly 40 % of all messages are delivered
/// twice must change *nothing*: duplicate Migrate/Boot/Publish deliveries
/// are absorbed by the dedup layers instead of double-installing VMs,
/// double-disseminating multicasts, or corrupting the trees.
#[test]
fn duplicate_storm_is_idempotent() {
    let t = SimTime::from_secs;
    let (mut cluster, vms) = build_cluster(7);
    let plan = FaultPlan::new(7)
        .degrade(
            t(70),
            Scope::All,
            Scope::All,
            LinkFault::loss(0.0).with_duplicate(0.4, SimDuration::from_millis(2)),
        )
        .clear_degradations(t(190));
    let topo = cluster.topo.clone();
    let mut driver = ChaosDriver::install(&mut cluster.engine, topo, plan);
    driver.run_until(&mut cluster.engine, t(240));
    assert!(
        cluster.engine.fault_stats().duplicated > 1000,
        "the storm must actually duplicate traffic: {:?}",
        cluster.engine.fault_stats()
    );
    let mut open = check_leaf_sets(&cluster.engine);
    open.extend(check_scribe_trees(&cluster.engine));
    open.extend(check_vm_conservation(&cluster.engine, &vms));
    open.extend(check_capacity(&cluster.engine));
    open.extend(check_aggregation(&cluster.engine, bw_demand_topic(), 1e-6));
    assert!(
        open.is_empty(),
        "duplicate storm broke invariants: {open:#?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn sub_quorum_crashes_always_converge(
        picks in vec(0usize..15, 1..=4),
        seed in 1u64..500,
    ) {
        let mut crashes: Vec<usize> = picks;
        crashes.sort_unstable();
        crashes.dedup();
        prop_assume!(crashes.len() < 15 / 2); // fewer than a quorum

        let (mut cluster, _vms) = build_cluster(seed);
        // Stagger the crashes over a few seconds: correlated and
        // independent failures are both instances of this plan shape.
        let mut plan = FaultPlan::new(seed);
        for (i, &server) in crashes.iter().enumerate() {
            let at = SimTime::from_secs(70 + (i as u64 * 7) % 20);
            plan = plan.crash(at, ActorId::new(server as u32));
        }

        let topo = cluster.topo.clone();
        let mut driver = ChaosDriver::install(&mut cluster.engine, topo, plan);

        // Play all faults, then give the repair protocols a settle
        // window, checking every 5 simulated seconds.
        let deadline = SimTime::from_secs(240);
        let mut t = SimTime::from_secs(100);
        let mut open = Vec::new();
        while t <= deadline {
            driver.run_until(&mut cluster.engine, t);
            open = check_leaf_sets(&cluster.engine);
            open.extend(check_scribe_trees(&cluster.engine));
            open.extend(check_aggregation(&cluster.engine, bw_demand_topic(), 1e-6));
            if open.is_empty() {
                break;
            }
            t += SimDuration::from_secs(5);
        }
        prop_assert!(
            open.is_empty(),
            "overlay did not converge after crashing {crashes:?} (seed {seed}): {open:#?}"
        );
    }
}

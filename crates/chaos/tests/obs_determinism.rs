//! The observability contract, asserted: obs observes, never steers.
//!
//! Running the same seeded chaos scenario with every obs plane enabled
//! (flight recorder, profiler, mirrored metrics export) and with them all
//! disabled must leave the simulation in byte-identical state — same
//! event count, same fault tallies, same per-controller protocol stats,
//! same satisfied bandwidth. And the enabled run must itself replay
//! byte-identically from the seed.

use std::fmt::Write as _;
use std::sync::Arc;

use vbundle_chaos::{ChaosDriver, FaultPlan, LinkFault, Scope};
use vbundle_core::{Cluster, CustomerId, ResourceSpec, ResourceVector, VBundleConfig, VmRecord};
use vbundle_dcn::{Bandwidth, Topology};
use vbundle_pastry::PastryConfig;
use vbundle_scribe::ScribeConfig;
use vbundle_sim::{ActorId, SimDuration, SimTime};

const SEED: u64 = 42;

/// Paper testbed with fast timers, a VM per server, and a bumpy chaos
/// plan (crash + restart under a lossy window) driven to a fixed
/// deadline. With `obs` the run records flight events, profiles the hot
/// path and exports the metrics registry mid-run — all of which must be
/// invisible to the simulation.
fn run_scenario(obs: bool) -> String {
    let topo = Arc::new(Topology::paper_testbed());
    let pastry = PastryConfig {
        heartbeat: Some(SimDuration::from_secs(1)),
        maintenance: Some(SimDuration::from_secs(10)),
        ..PastryConfig::default()
    };
    let mut builder = Cluster::builder(topo)
        .pastry(pastry)
        .scribe(ScribeConfig::default().with_probe_interval(SimDuration::from_secs(3)))
        .vbundle(
            VBundleConfig::default()
                .with_update_interval(SimDuration::from_secs(5))
                .with_rebalance_interval(SimDuration::from_secs(1000)),
        )
        .seed(SEED);
    if obs {
        builder = builder.flight_recorder(4096);
    }
    let mut cluster = builder.build();
    if obs {
        cluster.engine.enable_profiling();
    }
    let demand = Bandwidth::from_mbps(80.0);
    for server in 0..cluster.num_servers() {
        let id = cluster.alloc_vm_id();
        let mut vm = VmRecord::new(
            id,
            CustomerId(server as u32 % 3),
            ResourceSpec::fixed(ResourceVector::bandwidth_only(demand)),
        );
        vm.demand = ResourceVector::bandwidth_only(demand);
        cluster.install_vm(cluster.topo.server(server), vm);
    }
    cluster.run_until(SimTime::from_secs(60));

    let t = SimTime::from_secs;
    let plan = FaultPlan::new(SEED)
        .crash(t(70), ActorId::new(3))
        .degrade(t(80), Scope::All, Scope::All, LinkFault::loss(0.1))
        .restart(t(110), ActorId::new(3))
        .clear_degradations(t(150));
    let topo = cluster.topo.clone();
    let mut driver = ChaosDriver::install(&mut cluster.engine, topo, plan);
    driver.run_until(&mut cluster.engine, t(180));
    if obs {
        // Exporting mid-run must not perturb anything either.
        let _ = cluster.metrics_json();
    }
    driver.run_until(&mut cluster.engine, t(240));
    cluster.engine.take_injector();

    if obs {
        assert!(
            !cluster.engine.flight().snapshot().is_empty(),
            "obs run recorded no flight events — the recorder was not on"
        );
        assert!(
            cluster.engine.profile_report().is_some(),
            "obs run produced no profile — profiling was not on"
        );
    }
    digest(&cluster)
}

/// Everything deterministic about the end state, rendered to a string so
/// divergence shows up as a readable diff.
fn digest(cluster: &Cluster) -> String {
    let mut out = String::new();
    let fs = cluster.engine.fault_stats();
    let _ = writeln!(out, "now: {}", cluster.now().as_micros());
    let _ = writeln!(out, "events: {}", cluster.engine.events_processed());
    let _ = writeln!(out, "queue peak: {}", cluster.engine.queue_peak());
    let _ = writeln!(
        out,
        "faults: {} dropped, {} delayed, {} duplicated, {} corrupted",
        fs.dropped, fs.delayed, fs.duplicated, fs.corrupted
    );
    let totals = cluster.satisfaction();
    let _ = writeln!(
        out,
        "satisfaction: {:.6} / {:.6} Mbps",
        totals.satisfied.as_mbps(),
        totals.demand.as_mbps()
    );
    let _ = writeln!(out, "leases: {}", cluster.active_leases());
    let _ = writeln!(out, "migrations: {}", cluster.total_migrations());
    for i in 0..cluster.num_servers() {
        let c = cluster.controller(i);
        let s = &c.stats;
        let _ = writeln!(
            out,
            "server {i}: vms {} demand {:.6} util {:.6} out {} in {} q {} a {} gated {} rej {}",
            c.vms().len(),
            c.bw_demand().as_mbps(),
            c.utilization(),
            s.migrations_out,
            s.migrations_in,
            s.queries_sent,
            s.accepts_sent,
            s.migrations_gated,
            s.rejected_aggregates.get(),
        );
    }
    out
}

#[test]
fn obs_on_and_off_reach_byte_identical_state() {
    let plain = run_scenario(false);
    let observed = run_scenario(true);
    assert_eq!(
        plain, observed,
        "enabling observability changed the simulation"
    );
}

#[test]
fn obs_enabled_run_replays_byte_identically() {
    assert_eq!(
        run_scenario(true),
        run_scenario(true),
        "obs-enabled run did not replay deterministically"
    );
}

//! Backup-activated failover properties: when a failure domain is
//! declared dead from message-level evidence, the backup sites must
//! re-materialize the lost VMs onto their reserved headroom — restoring
//! every tenant without a single `Restart` event — while conserving VMs,
//! capacity and entitlement through the hard races: a stale rack
//! restarting mid-failover, repeated and overlapping domain crashes, and
//! partial evidence that must never trigger a declaration.

use std::collections::BTreeMap;
use std::sync::Arc;

use vbundle_chaos::{
    check_capacity, check_entitlement_conservation, check_vm_conservation, customer_satisfaction,
    ChaosDriver, FaultPlan,
};
use vbundle_core::{
    Cluster, ClusterModel, Customer, CustomerId, FailoverConfig, ResourceSpec, ResourceVector,
    SurvivabilityConfig, VBundleConfig, VmId, VmRecord,
};
use vbundle_dcn::{Bandwidth, ServerId, Topology};
use vbundle_pastry::overlay::topology_aware_ids;
use vbundle_sim::{ActorId, SimDuration, SimTime};

const TENANTS: u32 = 3;
const VMS_PER_TENANT: usize = 4;
const VM_MBPS: f64 = 100.0;
const MAX_FRAC_PER_DOMAIN: f64 = 0.5;
const BACKUP: f64 = 0.25;
const RECOVERY_FRAC: f64 = 0.9;

fn bw(mbps: f64) -> Bandwidth {
    Bandwidth::from_mbps(mbps)
}

/// Offline-places the workload survivably on a 2-pod × 2-rack × 2-server
/// fabric, then seeds a failover-enabled protocol cluster with the
/// placement *and* its per-VM backup charges, so each backup site knows
/// which VM it protects and where that VM's primary lives.
fn failover_cluster(seed: u64) -> (Cluster, Vec<(VmRecord, ServerId)>, Vec<VmId>) {
    let topo = Arc::new(
        Topology::builder()
            .pods(2)
            .racks_per_pod(2)
            .servers_per_rack(2)
            .build(),
    );
    let ids = topology_aware_ids(&topo);
    let mut model = ClusterModel::new(
        Arc::clone(&topo),
        ids,
        ResourceVector::bandwidth_only(bw(1000.0)),
    );
    let mut cluster = Cluster::builder(Arc::clone(&topo))
        .vbundle(
            VBundleConfig::default()
                .with_update_interval(SimDuration::from_secs(5))
                .with_rebalance_interval(SimDuration::from_secs(1000))
                .with_survivability(SurvivabilityConfig {
                    max_frac_per_domain: MAX_FRAC_PER_DOMAIN,
                    backup: BACKUP,
                })
                .with_failover(FailoverConfig {
                    probe_interval: SimDuration::from_secs(5),
                }),
        )
        .seed(seed)
        .build();

    let mut placements = Vec::new();
    let mut vms = Vec::new();
    for c in 0..TENANTS {
        let customer = Customer::new(CustomerId(c), format!("tenant-{c}"));
        for _ in 0..VMS_PER_TENANT {
            let id = cluster.alloc_vm_id();
            let mut vm = VmRecord::new(
                id,
                customer.id,
                ResourceSpec::fixed(ResourceVector::bandwidth_only(bw(VM_MBPS))),
            );
            vm.demand = ResourceVector::bandwidth_only(bw(VM_MBPS));
            let host = model
                .place_survivable(customer.key, vm, MAX_FRAC_PER_DOMAIN, BACKUP)
                .expect("fabric has room for every VM");
            placements.push((vm, host));
            vms.push(id);
        }
    }
    for (vm, host) in &placements {
        cluster.install_vm(*host, *vm);
    }
    for charge in model.backup_charges().to_vec() {
        cluster.install_backup_charge(charge.site, charge.vm, charge.primary, charge.amount);
    }
    cluster.reindex();
    cluster.run_until(SimTime::from_secs(60));
    (cluster, placements, vms)
}

/// Sum of a per-actor failover counter across all controllers.
fn fo_counter(cluster: &Cluster, pick: fn(&vbundle_core::ControllerStats) -> u64) -> u64 {
    (0..cluster.num_servers())
        .map(|s| pick(&cluster.controller(s).stats))
        .sum()
}

/// Runs the driver forward in 5 s steps until `check` passes or `until`
/// is reached; returns the still-open violations (empty = converged).
fn settle(
    cluster: &mut Cluster,
    driver: &mut ChaosDriver,
    from: SimTime,
    until: SimTime,
    mut check: impl FnMut(&Cluster) -> Vec<String>,
) -> Vec<String> {
    let mut now = from;
    let mut open = Vec::new();
    while now <= until {
        driver.run_until(&mut cluster.engine, now);
        open = check(cluster);
        if open.is_empty() {
            break;
        }
        now += SimDuration::from_secs(5);
    }
    open
}

/// Per-tenant recovery violations against a baseline snapshot.
fn recovery_check(cluster: &Cluster, baseline: &BTreeMap<u32, f64>) -> Vec<String> {
    let sat = customer_satisfaction(&cluster.engine);
    baseline
        .iter()
        .filter(|(_, &base)| base > 1e-9)
        .filter_map(|(&c, &base)| {
            let cur = sat.get(&c).copied().unwrap_or(0.0);
            (cur + 1e-6 < RECOVERY_FRAC * base).then(|| {
                format!(
                    "tenant {c} at {:.1}% of pre-crash satisfaction",
                    100.0 * cur / base
                )
            })
        })
        .collect()
}

/// The tentpole contract: a whole-rack crash with NO restart ever issued
/// — the dead servers stay dead — still restores every tenant to ≥ 90 %
/// of pre-crash satisfaction, because the backup sites declare the rack
/// dead from probe evidence and re-materialize its VMs onto the reserved
/// headroom. VM, capacity and entitlement conservation hold at the end.
#[test]
fn rack_crash_restores_tenants_without_restart() {
    let (mut cluster, placements, vms) = failover_cluster(41);
    let topo = cluster.topo.clone();
    // Crash the rack hosting the first placement — guaranteed non-empty.
    let rack = topo.rack_of(placements[0].1).index();
    let lost: Vec<VmId> = placements
        .iter()
        .filter(|(_, s)| topo.rack_of(*s).index() == rack)
        .map(|(vm, _)| vm.id)
        .collect();
    assert!(!lost.is_empty(), "crashed rack must host some VMs");
    let baseline = customer_satisfaction(&cluster.engine);
    assert_eq!(baseline.len(), TENANTS as usize);

    // Crash only — the plan contains no Restart event.
    let plan = FaultPlan::new(41).crash_rack(SimTime::from_secs(70), rack);
    let mut driver = ChaosDriver::install(&mut cluster.engine, topo, plan);
    let open = settle(
        &mut cluster,
        &mut driver,
        SimTime::from_secs(85),
        SimTime::from_secs(180),
        |c| recovery_check(c, &baseline),
    );
    assert!(open.is_empty(), "tenants did not recover: {open:#?}");

    assert_eq!(
        fo_counter(&cluster, |s| s.fo_rematerialized.get()),
        lost.len() as u64,
        "every lost VM re-materialized exactly once"
    );
    assert!(fo_counter(&cluster, |s| s.fo_domains_declared.get()) >= 1);
    // The dead rack never came back, so nothing needs fencing: each VM
    // lives on exactly one server and every invariant is closed.
    let mut open = check_vm_conservation(&cluster.engine, &vms);
    open.extend(check_capacity(&cluster.engine));
    open.extend(check_entitlement_conservation(&cluster.engine));
    assert!(
        open.is_empty(),
        "conservation broken after failover: {open:#?}"
    );
}

/// The restart race: the "dead" rack comes back right after the
/// declaration fired. The re-materialized copies must win — the stale
/// originals on the restarted servers are fenced away — and the tenant
/// ends up whole, with no VM duplicated once the fences ack.
#[test]
fn failover_racing_late_restart_fences_stale_copies() {
    let (mut cluster, placements, vms) = failover_cluster(43);
    let topo = cluster.topo.clone();
    let rack = topo.rack_of(placements[0].1).index();
    let rack0: Vec<usize> = (0..cluster.num_servers())
        .filter(|&s| topo.rack_of(topo.server(s)).index() == rack)
        .collect();
    let stale_vms: Vec<VmId> = placements
        .iter()
        .filter(|(_, s)| topo.rack_of(*s).index() == rack)
        .map(|(vm, _)| vm.id)
        .collect();
    assert!(!stale_vms.is_empty());
    let baseline = customer_satisfaction(&cluster.engine);

    // Crash at 70 s; with 5 s probes the declaration lands by ~80 s.
    // The whole rack restarts at 82 s — after the failover committed but
    // (likely) before its fences were acked.
    let mut plan = FaultPlan::new(43).crash_rack(SimTime::from_secs(70), rack);
    for &s in &rack0 {
        plan = plan.restart(SimTime::from_secs(82), ActorId::new(s as u32));
    }
    let mut driver = ChaosDriver::install(&mut cluster.engine, topo.clone(), plan);
    let open = settle(
        &mut cluster,
        &mut driver,
        SimTime::from_secs(90),
        SimTime::from_secs(240),
        |c| {
            // Converged means: no duplicate or lost VM (without leaning
            // on the pending-fence exception), every fence acked, and
            // every tenant restored.
            let mut open = check_vm_conservation(&c.engine, &vms);
            for s in 0..c.num_servers() {
                let pending = c.controller(s).fenced_vms();
                if !pending.is_empty() {
                    open.push(format!("server {s} still has pending fences: {pending:?}"));
                }
            }
            open.extend(recovery_check(c, &baseline));
            open
        },
    );
    assert!(open.is_empty(), "restart race did not reconcile: {open:#?}");

    // The re-materialized copy won: the restarted servers no longer host
    // the stale originals.
    for &s in &rack0 {
        for vm in cluster.controller(s).vms() {
            assert!(
                !stale_vms.contains(&vm.id),
                "server {s} still hosts stale VM {:?} after fencing",
                vm.id
            );
        }
    }
    assert!(fo_counter(&cluster, |s| s.fo_fences_sent.get()) >= 1);
    assert_eq!(
        fo_counter(&cluster, |s| s.fo_rematerialized.get()),
        stale_vms.len() as u64
    );
    let open = check_capacity(&cluster.engine);
    assert!(open.is_empty(), "capacity broken after race: {open:#?}");
}

/// Repeated and overlapping domain crashes stay idempotent: crashing the
/// same rack twice and then its whole pod produces exactly one
/// re-materialization per lost VM — protections are consumed on first
/// declaration, so no VM is ever materialized twice. Full restoration is
/// NOT promised here: copies re-materialized into the pod's sibling rack
/// carry no fresh protection (single-shot, unchanged backup overhead),
/// so the follow-up pod crash can take them down for good — tenants then
/// degrade gracefully to the passive survivable floor instead of
/// recovering to 90 %.
#[test]
fn overlapping_domain_crashes_materialize_each_vm_once() {
    let (mut cluster, placements, vms) = failover_cluster(47);
    let topo = cluster.topo.clone();
    let rack = topo.rack_of(placements[0].1).index();
    let pod = topo.pod_of(placements[0].1).index();
    let pod_vms: Vec<VmId> = placements
        .iter()
        .filter(|(_, s)| topo.pod_of(*s).index() == pod)
        .map(|(vm, _)| vm.id)
        .collect();
    assert!(!pod_vms.is_empty(), "crashed pod must host some VMs");
    let baseline = customer_satisfaction(&cluster.engine);

    let plan = FaultPlan::new(47)
        .crash_rack(SimTime::from_secs(70), rack)
        // Same rack again: already dead, must be a pure no-op.
        .crash_rack(SimTime::from_secs(90), rack)
        // Then the whole containing pod: only its sibling rack newly dies.
        .crash_pod(SimTime::from_secs(95), pod);
    let mut driver = ChaosDriver::install(&mut cluster.engine, topo, plan);
    // The passive survivable floor, not the 90 % failover restoration:
    // the overlapping pod crash may permanently take re-materialized
    // copies whose single-shot protection was already spent.
    let floor = 0.45;
    let open = settle(
        &mut cluster,
        &mut driver,
        SimTime::from_secs(110),
        SimTime::from_secs(240),
        |c| {
            let sat = customer_satisfaction(&c.engine);
            baseline
                .iter()
                .filter(|(_, &base)| base > 1e-9)
                .filter_map(|(&t, &base)| {
                    let cur = sat.get(&t).copied().unwrap_or(0.0);
                    (cur + 1e-6 < floor * base)
                        .then(|| format!("tenant {t} below floor at {:.1}%", 100.0 * cur / base))
                })
                .collect()
        },
    );
    assert!(
        open.is_empty(),
        "tenants fell below the degradation floor: {open:#?}"
    );
    assert_eq!(
        fo_counter(&cluster, |s| s.fo_rematerialized.get()),
        pod_vms.len() as u64,
        "each lost VM re-materialized exactly once across overlapping crashes"
    );
    let mut open = check_vm_conservation(&cluster.engine, &vms);
    open.extend(check_capacity(&cluster.engine));
    open.extend(check_entitlement_conservation(&cluster.engine));
    assert!(open.is_empty(), "conservation broken: {open:#?}");
}

/// Partial evidence never declares: one crashed server in a protected
/// rack keeps bouncing probes, but its rack-mates keep acking — the
/// domain verdict requires *every* member silent, so no failover fires.
#[test]
fn single_server_crash_never_declares_the_rack() {
    let (mut cluster, placements, _vms) = failover_cluster(53);
    let topo = cluster.topo.clone();
    let victim = placements[0].1;
    let plan =
        FaultPlan::new(53).crash(SimTime::from_secs(70), ActorId::new(victim.index() as u32));
    let mut driver = ChaosDriver::install(&mut cluster.engine, topo, plan);
    driver.run_until(&mut cluster.engine, SimTime::from_secs(200));
    assert_eq!(
        fo_counter(&cluster, |s| s.fo_domains_declared.get()),
        0,
        "a single-server crash must not be declared a domain death"
    );
    assert_eq!(fo_counter(&cluster, |s| s.fo_rematerialized.get()), 0);
}

/// The failover path is deterministic: two runs of the identical seeded
/// crash scenario agree on every per-tenant satisfaction value and every
/// failover counter.
#[test]
fn failover_replay_is_deterministic() {
    let run = || {
        let (mut cluster, placements, _vms) = failover_cluster(59);
        let topo = cluster.topo.clone();
        let rack = topo.rack_of(placements[0].1).index();
        let plan = FaultPlan::new(59).crash_rack(SimTime::from_secs(70), rack);
        let mut driver = ChaosDriver::install(&mut cluster.engine, topo, plan);
        driver.run_until(&mut cluster.engine, SimTime::from_secs(150));
        let sat: Vec<(u32, u64)> = customer_satisfaction(&cluster.engine)
            .into_iter()
            .map(|(c, v)| (c, v.to_bits()))
            .collect();
        (
            sat,
            fo_counter(&cluster, |s| s.fo_domains_declared.get()),
            fo_counter(&cluster, |s| s.fo_rematerialized.get()),
            fo_counter(&cluster, |s| s.fo_fences_sent.get()),
            fo_counter(&cluster, |s| s.fo_lease_reverts.get()),
        )
    };
    assert_eq!(run(), run(), "failover replay diverged");
}

//! Poison-tolerance properties: corrupted aggregation reports replay
//! byte-identically, targeted partition heals touch only their cut, and
//! the Defensive pipeline contains a poisoning that demonstrably breaks
//! the TrustAll ablation.

use std::fmt::Write as _;
use std::sync::Arc;

use vbundle_aggregation::{AggregationConfig, Robustness};
use vbundle_chaos::{check_global_mean, ChaosDriver, FaultPlan, Scope};
use vbundle_core::{
    Cluster, CustomerId, ResourceSpec, ResourceVector, VBundleConfig, VmId, VmRecord,
};
use vbundle_dcn::{Bandwidth, Topology};
use vbundle_pastry::PastryConfig;
use vbundle_scribe::ScribeConfig;
use vbundle_sim::{ActorId, CorruptionMode, SimDuration, SimTime};

/// Paper testbed (15 servers) with fast timers; `heavy` servers host a
/// 400 Mbps VM, the rest 80 Mbps — the non-uniform load that makes a
/// poisoned mean *diverge* from the honest one instead of canceling out.
fn build_cluster(seed: u64, robustness: Robustness, mean_gate: bool) -> (Cluster, Vec<VmId>) {
    let topo = Arc::new(Topology::paper_testbed());
    let pastry = PastryConfig {
        heartbeat: Some(SimDuration::from_secs(1)),
        maintenance: Some(SimDuration::from_secs(10)),
        ..PastryConfig::default()
    };
    let mut cluster = Cluster::builder(topo)
        .pastry(pastry)
        .scribe(ScribeConfig::default().with_probe_interval(SimDuration::from_secs(3)))
        .aggregation(AggregationConfig {
            robustness,
            ..AggregationConfig::default()
        })
        .vbundle(
            VBundleConfig::default()
                .with_update_interval(SimDuration::from_secs(5))
                .with_rebalance_interval(SimDuration::from_secs(1000))
                .with_mean_gate(mean_gate)
                .with_mean_jump_bound(0.15),
        )
        .seed(seed)
        .build();
    let mut vms = Vec::new();
    for server in 0..cluster.num_servers() {
        let demand = if server % 5 == 0 {
            Bandwidth::from_mbps(400.0)
        } else {
            Bandwidth::from_mbps(80.0)
        };
        let id = cluster.alloc_vm_id();
        let mut vm = VmRecord::new(
            id,
            CustomerId(server as u32 % 3),
            ResourceSpec::fixed(ResourceVector::bandwidth_only(demand)),
        );
        vm.demand = ResourceVector::bandwidth_only(demand);
        cluster.install_vm(cluster.topo.server(server), vm);
        vms.push(id);
    }
    cluster.run_until(SimTime::from_secs(60));
    (cluster, vms)
}

/// Two poisoned reporters, everything corrupted from `t=70`.
fn poison_plan(seed: u64, mode: CorruptionMode) -> FaultPlan {
    FaultPlan::new(seed)
        .corrupt_aggregate(SimTime::from_secs(70), ActorId::new(0), mode)
        .corrupt_aggregate(SimTime::from_secs(70), ActorId::new(5), mode)
}

/// One poisoned run, summarized as a deterministic string: the injector's
/// fault counters plus every server's steering mean, printed from
/// simulated state only.
fn poison_run_fingerprint(seed: u64) -> String {
    let (mut cluster, _vms) = build_cluster(seed, Robustness::defensive(), true);
    let topo = cluster.topo.clone();
    let plan = poison_plan(seed, CorruptionMode::HugeScale);
    let mut driver = ChaosDriver::install(&mut cluster.engine, topo, plan);
    driver.run_until(&mut cluster.engine, SimTime::from_secs(200));
    let mut out = format!("{:?}\n", cluster.engine.fault_stats());
    for i in 0..cluster.num_servers() {
        let mean = cluster
            .controller(i)
            .effective_mean_for(vbundle_core::ResourceKind::Bandwidth);
        let _ = writeln!(out, "server {i}: {mean:?}");
    }
    out
}

#[test]
fn corruption_replays_byte_identically() {
    let a = poison_run_fingerprint(11);
    let b = poison_run_fingerprint(11);
    assert_eq!(a, b, "same seed + same plan must replay identically");
    assert!(
        a.lines().next().unwrap().contains("corrupted"),
        "fingerprint should carry the corruption counter: {a}"
    );
}

#[test]
fn heal_partition_removes_only_its_cut() {
    let (mut cluster, _vms) = build_cluster(13, Robustness::TrustAll, true);
    let t = SimTime::from_secs;
    let cut_a = (Scope::Rack(0), Scope::All);
    let cut_b = (Scope::Actor(ActorId::new(7)), Scope::All);
    let plan = FaultPlan::new(13)
        .partition(t(70), cut_a.0, cut_a.1)
        .partition(t(70), cut_b.0, cut_b.1)
        // Heal the rack cut only — in the reversed orientation, which must
        // still match.
        .heal_partition(t(80), cut_a.1, cut_a.0);
    let topo = cluster.topo.clone();
    let mut driver = ChaosDriver::install(&mut cluster.engine, topo, plan);
    driver.run_until(&mut cluster.engine, t(90));
    let partitions = driver.net().with(|st| st.partitions.clone());
    assert_eq!(partitions, vec![cut_b], "only the rack cut heals");
}

/// The acceptance property of this PR: with 2 of 15 reporters poisoned,
/// the Defensive pipeline (validation + winsorized combine + mean gate)
/// keeps every server steering within epsilon of the honest mean, while
/// the TrustAll ablation of the very same scenario measurably violates it.
#[test]
fn defensive_contains_poison_that_breaks_trust_all() {
    const EPS: f64 = 0.05;
    let deadline = SimTime::from_secs(200);

    let (mut defensive, _) = build_cluster(17, Robustness::defensive(), true);
    let topo = defensive.topo.clone();
    let plan = poison_plan(17, CorruptionMode::HugeScale);
    let mut driver = ChaosDriver::install(&mut defensive.engine, topo, plan);
    driver.run_until(&mut defensive.engine, deadline);
    assert!(
        defensive.engine.fault_stats().corrupted > 50,
        "poison must actually flow: {:?}",
        defensive.engine.fault_stats()
    );
    let open = check_global_mean(&defensive.engine, EPS);
    assert!(open.is_empty(), "defensive run leaked poison: {open:#?}");

    let (mut trusting, _) = build_cluster(17, Robustness::TrustAll, false);
    let topo = trusting.topo.clone();
    let plan = poison_plan(17, CorruptionMode::HugeScale);
    let mut driver = ChaosDriver::install(&mut trusting.engine, topo, plan);
    driver.run_until(&mut trusting.engine, deadline);
    let open = check_global_mean(&trusting.engine, EPS);
    assert!(
        !open.is_empty(),
        "the TrustAll ablation should visibly drift under the same poison"
    );
}

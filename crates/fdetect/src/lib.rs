//! # vbundle-fdetect — adaptive failure detection and reliable delivery
//!
//! Shared liveness primitives for every protocol layer of the v-Bundle
//! stack. The PR-1 chaos suite showed that fixed `3 × interval` silence
//! deadlines are brittle: lossy or slow links evict live nodes, and those
//! false positives cascade into Scribe re-joins and spurious migration
//! rollbacks. This crate replaces them with:
//!
//! - [`FailureDetector`] — a **phi-accrual** detector (per-peer
//!   inter-arrival window, configurable suspicion threshold) with
//!   SWIM-style suspicion: a peer crossing the threshold becomes
//!   *suspect* and gets a confirmation grace during which intermediaries
//!   are asked to ping it, so a lossy direct link alone cannot evict a
//!   live node. See [`phi`].
//! - [`Courier`] — retransmission bookkeeping for request/response
//!   exchanges: exponential backoff, deterministic jitter (seeded via the
//!   in-tree `rand` stub), bounded retry budgets. See [`courier`].
//! - [`DedupWindow`] — receive-side message-id dedup making duplicated
//!   deliveries idempotent by construction. See [`dedup`].
//! - [`DomainSuspicion`] — folds per-server death evidence into sticky
//!   whole-failure-domain declarations, the trigger for backup-activated
//!   failover. See [`domain`].
//!
//! All primitives are pure state machines over the simulated clock:
//! deterministic, replayable, and engine-agnostic.

#![warn(missing_docs)]

pub mod courier;
pub mod dedup;
pub mod domain;
pub mod phi;
pub mod probe;

pub use courier::{backoff_rounds, Courier, CourierConfig, RetryDecision};
pub use dedup::DedupWindow;
pub use domain::DomainSuspicion;
pub use phi::{ArrivalWindow, FailureDetector, PhiConfig, Verdict};
pub use probe::Probe;

/// How a protocol layer decides that a peer is dead.
///
/// Carried inside each layer's config so ablation sweeps (and the
/// `chaos_sweep` false-positive comparison) can flip one layer at a time
/// between the legacy fixed deadline and the adaptive detector.
#[derive(Debug, Clone, PartialEq)]
pub enum FailureDetection {
    /// Legacy behaviour: a peer silent for `multiplier × probe interval`
    /// is declared dead outright, no second opinion.
    FixedInterval,
    /// Phi-accrual suspicion plus SWIM-style indirect probing before
    /// eviction.
    PhiAccrual(PhiConfig),
}

impl Default for FailureDetection {
    fn default() -> Self {
        FailureDetection::PhiAccrual(PhiConfig::default())
    }
}

impl FailureDetection {
    /// The phi configuration, if adaptive detection is selected.
    pub fn phi_config(&self) -> Option<&PhiConfig> {
        match self {
            FailureDetection::FixedInterval => None,
            FailureDetection::PhiAccrual(c) => Some(c),
        }
    }
}

//! The minimal liveness-probe wire message shared by overlay tests and
//! the failure-detection machinery.

use vbundle_sim::{Message, MsgCategory};

/// A liveness probe carrying a nonce that correlates request and echo.
///
/// Pastry's overlay tests route `Probe`s as their application payload;
/// protocol layers embed it wherever a content-free "are you there?"
/// round-trip feeds a [`FailureDetector`](crate::FailureDetector).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Probe(pub u64);

impl Message for Probe {
    fn wire_size(&self) -> usize {
        12 // 8-byte nonce + framing
    }

    fn category(&self) -> MsgCategory {
        MsgCategory::Maintenance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_is_maintenance_traffic() {
        assert_eq!(Probe(7).wire_size(), 12);
        assert_eq!(Probe(7).category(), MsgCategory::Maintenance);
    }
}

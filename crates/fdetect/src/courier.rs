//! A reliable request/response courier: retransmission with exponential
//! backoff, deterministic jitter and a bounded retry budget.
//!
//! The courier is a passive table — it does not send anything itself,
//! because every protocol layer in this workspace owns its own wire type
//! and timer loop. The embedding layer drives it:
//!
//! 1. [`Courier::register`] a request key before the first send; arm a
//!    timer with the returned timeout.
//! 2. On the timer, call [`Courier::on_timeout`]: [`RetryDecision::Retry`]
//!    means resend and re-arm, [`RetryDecision::GiveUp`] means the retry
//!    budget is exhausted (roll back / escalate), [`RetryDecision::Settled`]
//!    means the ack won the race with the timer.
//! 3. On the response, call [`Courier::ack`].
//!
//! Jitter is drawn from the in-tree `rand` stub seeded with
//! `(salt, key, attempt)`, so retransmission schedules are fully
//! deterministic yet de-synchronized across concurrent requests.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vbundle_sim::SimDuration;

/// Tunables of a [`Courier`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CourierConfig {
    /// Timeout of the first attempt.
    pub base_timeout: SimDuration,
    /// Cap on the backed-off timeout.
    pub max_timeout: SimDuration,
    /// Total send attempts (first transmission included) before
    /// [`RetryDecision::GiveUp`].
    pub max_attempts: u32,
    /// Jitter added to each timeout, as a percentage of that timeout
    /// (`10` = up to +10%). De-synchronizes retry storms.
    pub jitter_pct: u32,
    /// Seed salt for the jitter stream — lets two couriers with the same
    /// keys jitter differently.
    pub salt: u64,
}

impl Default for CourierConfig {
    fn default() -> Self {
        CourierConfig {
            base_timeout: SimDuration::from_secs(1),
            max_timeout: SimDuration::from_mins(1),
            max_attempts: 4,
            jitter_pct: 10,
            salt: 0,
        }
    }
}

/// What to do when a request's ack timer fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryDecision {
    /// Resend and re-arm the timer with this timeout.
    Retry {
        /// Timeout for the retransmitted attempt.
        timeout: SimDuration,
    },
    /// Retry budget exhausted: the request failed.
    GiveUp,
    /// The request was acked (or abandoned) before the timer fired.
    Settled,
}

/// Retransmission state for outstanding requests keyed by message id.
#[derive(Debug, Clone)]
pub struct Courier {
    /// key → attempts already sent.
    outstanding: BTreeMap<u64, u32>,
    config: CourierConfig,
}

impl Courier {
    /// Creates a courier.
    pub fn new(config: CourierConfig) -> Self {
        Courier {
            outstanding: BTreeMap::new(),
            config,
        }
    }

    /// The tunables in effect.
    pub fn config(&self) -> &CourierConfig {
        &self.config
    }

    /// Timeout for a given attempt of `key`: exponential backoff from
    /// `base_timeout`, capped, plus deterministic jitter.
    pub fn timeout_for(&self, key: u64, attempt: u32) -> SimDuration {
        let base = self.config.base_timeout.as_micros().max(1);
        let cap = self.config.max_timeout.as_micros().max(base);
        let backed_off = base.saturating_mul(1u64 << attempt.min(16)).min(cap);
        let jitter_cap = backed_off / 100 * self.config.jitter_pct as u64;
        let jitter = if jitter_cap == 0 {
            0
        } else {
            let seed = self
                .config
                .salt
                .wrapping_add(key.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_add((attempt as u64) << 32);
            StdRng::seed_from_u64(seed).gen_range(0..=jitter_cap)
        };
        SimDuration::from_micros(backed_off + jitter)
    }

    /// Registers a new request and returns the first attempt's timeout.
    /// Re-registering an outstanding key restarts its budget.
    pub fn register(&mut self, key: u64) -> SimDuration {
        self.outstanding.insert(key, 1);
        self.timeout_for(key, 0)
    }

    /// Returns the timeout covering `key`'s current attempt, registering
    /// the key if it is not outstanding — used to re-arm timers after a
    /// restart purged them without burning a retry.
    pub fn arm(&mut self, key: u64) -> SimDuration {
        let attempts = *self.outstanding.entry(key).or_insert(1);
        self.timeout_for(key, attempts - 1)
    }

    /// The response arrived; returns true if the key was outstanding
    /// (false = duplicate or stale ack, already settled).
    pub fn ack(&mut self, key: u64) -> bool {
        self.outstanding.remove(&key).is_some()
    }

    /// The ack timer for `key` fired.
    pub fn on_timeout(&mut self, key: u64) -> RetryDecision {
        let Some(attempts) = self.outstanding.get_mut(&key) else {
            return RetryDecision::Settled;
        };
        if *attempts >= self.config.max_attempts {
            self.outstanding.remove(&key);
            return RetryDecision::GiveUp;
        }
        let attempt = *attempts;
        *attempts += 1;
        RetryDecision::Retry {
            timeout: self.timeout_for(key, attempt),
        }
    }

    /// Whether `key` still awaits its response.
    pub fn is_outstanding(&self, key: u64) -> bool {
        self.outstanding.contains_key(&key)
    }

    /// Outstanding keys, in order.
    pub fn outstanding_keys(&self) -> Vec<u64> {
        self.outstanding.keys().copied().collect()
    }

    /// Abandons `key` without an ack (e.g. the peer was declared dead).
    pub fn forget(&mut self, key: u64) {
        self.outstanding.remove(&key);
    }
}

/// Rounds to wait before resurrection-probe attempt `attempt`, with the
/// exponent capped at `max_exp`: `1, 2, 4, …, 2^max_exp, 2^max_exp, …`.
///
/// Used where retries piggyback on an existing periodic timer (Pastry's
/// maintenance loop probing its graveyard) instead of arming their own:
/// the schedule backs off like the courier's but is measured in rounds.
pub fn backoff_rounds(attempt: u32, max_exp: u32) -> u64 {
    1u64 << attempt.min(max_exp).min(32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> CourierConfig {
        CourierConfig {
            base_timeout: SimDuration::from_secs(1),
            max_timeout: SimDuration::from_secs(6),
            max_attempts: 3,
            jitter_pct: 10,
            salt: 42,
        }
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let c = Courier::new(CourierConfig {
            jitter_pct: 0,
            ..config()
        });
        assert_eq!(c.timeout_for(1, 0), SimDuration::from_secs(1));
        assert_eq!(c.timeout_for(1, 1), SimDuration::from_secs(2));
        assert_eq!(c.timeout_for(1, 2), SimDuration::from_secs(4));
        assert_eq!(c.timeout_for(1, 3), SimDuration::from_secs(6)); // capped
        assert_eq!(c.timeout_for(1, 63), SimDuration::from_secs(6));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let c = Courier::new(config());
        let t1 = c.timeout_for(9, 1);
        let t2 = c.timeout_for(9, 1);
        assert_eq!(t1, t2, "same (key, attempt) must jitter identically");
        assert!(t1 >= SimDuration::from_secs(2));
        assert!(t1 <= SimDuration::from_micros(2_200_000));
        // Different keys de-synchronize.
        let spread: Vec<SimDuration> = (0..16).map(|k| c.timeout_for(k, 1)).collect();
        assert!(spread.iter().any(|&t| t != spread[0]));
    }

    #[test]
    fn retry_budget_is_bounded() {
        let mut c = Courier::new(config());
        c.register(5);
        assert!(matches!(c.on_timeout(5), RetryDecision::Retry { .. }));
        assert!(matches!(c.on_timeout(5), RetryDecision::Retry { .. }));
        assert_eq!(c.on_timeout(5), RetryDecision::GiveUp);
        assert!(!c.is_outstanding(5));
        assert_eq!(c.on_timeout(5), RetryDecision::Settled);
    }

    /// Drive a request all the way to exhaustion: the decision sequence is
    /// exactly `Retry^(max_attempts-1), GiveUp`, the give-up fires *once*
    /// (spurious timers afterwards settle silently), and the backoff
    /// schedule — jitter included — replays identically in a fresh courier.
    #[test]
    fn exhaustion_gives_up_once_with_replayable_backoff() {
        let schedule = |c: &mut Courier| {
            let mut timeouts = vec![c.register(77)];
            let mut give_ups = 0;
            // Fire the timer well past the budget, as a buggy embedding
            // that re-arms after give-up would.
            for _ in 0..10 {
                match c.on_timeout(77) {
                    RetryDecision::Retry { timeout } => timeouts.push(timeout),
                    RetryDecision::GiveUp => give_ups += 1,
                    RetryDecision::Settled => {}
                }
            }
            (timeouts, give_ups)
        };
        let (timeouts, give_ups) = schedule(&mut Courier::new(config()));
        assert_eq!(give_ups, 1, "give-up must fire exactly once");
        assert_eq!(
            timeouts.len(),
            config().max_attempts as usize,
            "one timeout per attempt, first transmission included"
        );
        assert!(
            timeouts.windows(2).all(|w| w[0] < w[1]),
            "backoff grows monotonically: {timeouts:?}"
        );
        let (replay, _) = schedule(&mut Courier::new(config()));
        assert_eq!(timeouts, replay, "schedule must replay bit-for-bit");
    }

    #[test]
    fn ack_settles_and_dedups() {
        let mut c = Courier::new(config());
        c.register(8);
        assert!(c.ack(8));
        assert!(!c.ack(8), "second ack is a duplicate");
        assert_eq!(c.on_timeout(8), RetryDecision::Settled);
    }

    #[test]
    fn arm_does_not_burn_retries() {
        let mut c = Courier::new(config());
        c.register(3);
        assert!(matches!(c.on_timeout(3), RetryDecision::Retry { .. }));
        let before = c.outstanding_keys();
        let t = c.arm(3);
        assert_eq!(before, c.outstanding_keys());
        assert_eq!(t, c.timeout_for(3, 1));
    }

    #[test]
    fn backoff_rounds_schedule() {
        let rounds: Vec<u64> = (0..5).map(|a| backoff_rounds(a, 2)).collect();
        assert_eq!(rounds, vec![1, 2, 4, 4, 4]);
    }
}

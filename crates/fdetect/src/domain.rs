//! Domain-level suspicion: aggregating per-server death evidence into a
//! whole-failure-domain verdict.
//!
//! Backup-activated failover must not fire on one noisy link: a single
//! suspect server may be a detector false positive, but *every* member
//! of a rack going silent at once is a domain fault. [`DomainSuspicion`]
//! folds the per-node evidence the phi/SWIM layer already produces
//! (eviction upcalls, send failures, probe acks) into a per-domain state
//! machine with a sticky *declared* terminal state, so the consumer's
//! failover path runs exactly once per domain death even when evidence
//! keeps arriving.

use std::collections::{BTreeMap, BTreeSet};

/// Evidence-driven aggregation of per-server liveness into per-domain
/// death declarations.
///
/// The caller feeds it `mark_dead` / `mark_alive` evidence keyed by an
/// opaque member id (actor index), then asks [`declare`](Self::declare)
/// whether a given domain — identified by an opaque domain id with an
/// explicit member set — should be declared dead. A domain is declared
/// when **every** member has dead evidence and none has newer alive
/// evidence; the declaration is sticky until
/// [`retract`](Self::retract)ed (e.g. after the consumer has finished
/// failing over and fencing), so repeated evidence cannot re-trigger it.
#[derive(Debug, Default, Clone)]
pub struct DomainSuspicion {
    /// Per-member verdict: `true` = latest evidence says dead.
    dead: BTreeMap<u64, bool>,
    /// Domains already declared dead (sticky).
    declared: BTreeSet<u32>,
}

impl DomainSuspicion {
    /// A fresh aggregator with no evidence.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records death evidence for `member` (detector eviction, bounced
    /// send, missed probe). Overrides earlier alive evidence.
    pub fn mark_dead(&mut self, member: u64) {
        self.dead.insert(member, true);
    }

    /// Records liveness evidence for `member` (probe ack, received
    /// message). Overrides earlier death evidence.
    pub fn mark_alive(&mut self, member: u64) {
        self.dead.insert(member, false);
    }

    /// Latest verdict for `member`, if any evidence was recorded.
    pub fn is_dead(&self, member: u64) -> bool {
        self.dead.get(&member).copied().unwrap_or(false)
    }

    /// Whether `domain` is currently declared dead.
    pub fn is_declared(&self, domain: u32) -> bool {
        self.declared.contains(&domain)
    }

    /// Attempts to declare `domain` (with the given member set) dead.
    ///
    /// Returns `true` exactly once per declaration: when every member has
    /// standing death evidence and the domain was not already declared.
    /// An empty member set never declares — no evidence is not evidence.
    pub fn declare(&mut self, domain: u32, members: impl IntoIterator<Item = u64>) -> bool {
        if self.declared.contains(&domain) {
            return false;
        }
        let mut any = false;
        for m in members {
            any = true;
            if !self.is_dead(m) {
                return false;
            }
        }
        if !any {
            return false;
        }
        self.declared.insert(domain);
        true
    }

    /// Withdraws a declaration, so fresh evidence can re-declare the
    /// domain if it dies again (the consumer calls this once its
    /// failover for the previous death has fully reconciled).
    pub fn retract(&mut self, domain: u32) {
        self.declared.remove(&domain);
    }

    /// Domains currently declared dead, in order.
    pub fn declared(&self) -> impl Iterator<Item = u32> + '_ {
        self.declared.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declares_only_when_every_member_dead() {
        let mut s = DomainSuspicion::new();
        s.mark_dead(1);
        assert!(!s.declare(0, [1, 2]));
        s.mark_dead(2);
        assert!(s.declare(0, [1, 2]));
        assert!(s.is_declared(0));
    }

    #[test]
    fn declaration_is_sticky_and_idempotent() {
        let mut s = DomainSuspicion::new();
        s.mark_dead(1);
        assert!(s.declare(0, [1]));
        // Re-declaring (even with identical evidence) fires nothing.
        assert!(!s.declare(0, [1]));
        // Alive evidence after declaration does not undeclare.
        s.mark_alive(1);
        assert!(s.is_declared(0));
    }

    #[test]
    fn alive_evidence_blocks_declaration() {
        let mut s = DomainSuspicion::new();
        s.mark_dead(1);
        s.mark_dead(2);
        s.mark_alive(2);
        assert!(!s.declare(0, [1, 2]));
        assert!(!s.is_declared(0));
    }

    #[test]
    fn empty_member_set_never_declares() {
        let mut s = DomainSuspicion::new();
        assert!(!s.declare(3, []));
        assert!(!s.is_declared(3));
    }

    #[test]
    fn retract_allows_repeat_declaration() {
        let mut s = DomainSuspicion::new();
        s.mark_dead(7);
        assert!(s.declare(1, [7]));
        s.retract(1);
        assert!(!s.is_declared(1));
        // The domain died again: same evidence re-declares after retract.
        assert!(s.declare(1, [7]));
    }

    #[test]
    fn declared_walks_in_order() {
        let mut s = DomainSuspicion::new();
        s.mark_dead(1);
        s.mark_dead(2);
        assert!(s.declare(5, [1]));
        assert!(s.declare(2, [2]));
        let order: Vec<u32> = s.declared().collect();
        assert_eq!(order, vec![2, 5]);
    }
}

//! Receive-side message-id dedup, so duplicated deliveries
//! ([`FaultAction::Duplicate`](vbundle_sim::FaultAction) or courier
//! retransmissions) are idempotent by construction.

use std::collections::{BTreeSet, VecDeque};

/// A bounded set of recently seen message ids with FIFO eviction.
///
/// `remember` returns whether the id was *new*; handlers guard their
/// side effects with it:
///
/// ```
/// use vbundle_fdetect::DedupWindow;
/// let mut seen: DedupWindow<(u64, u64)> = DedupWindow::new(128);
/// assert!(seen.remember((1, 7)));   // first delivery: apply
/// assert!(!seen.remember((1, 7)));  // duplicate: drop
/// ```
#[derive(Debug, Clone)]
pub struct DedupWindow<K: Ord + Clone> {
    seen: BTreeSet<K>,
    order: VecDeque<K>,
    cap: usize,
}

impl<K: Ord + Clone> DedupWindow<K> {
    /// A window remembering up to `cap` ids.
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        DedupWindow {
            seen: BTreeSet::new(),
            order: VecDeque::with_capacity(cap),
            cap,
        }
    }

    /// Records `key`; returns true iff it had not been seen (within the
    /// window's horizon).
    pub fn remember(&mut self, key: K) -> bool {
        if !self.seen.insert(key.clone()) {
            return false;
        }
        if self.order.len() == self.cap {
            if let Some(old) = self.order.pop_front() {
                self.seen.remove(&old);
            }
        }
        self.order.push_back(key);
        true
    }

    /// Whether `key` is currently remembered.
    pub fn contains(&self, key: &K) -> bool {
        self.seen.contains(key)
    }

    /// Number of ids currently remembered.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedups_within_window() {
        let mut w: DedupWindow<u64> = DedupWindow::new(4);
        assert!(w.remember(1));
        assert!(w.remember(2));
        assert!(!w.remember(1));
        assert_eq!(w.len(), 2);
    }

    /// A duplicate storm — every id delivered three times, far more ids
    /// than the window holds — never grows the window past its cap, and
    /// duplicates arriving within the horizon are still suppressed.
    #[test]
    fn bounded_under_duplicate_storm() {
        const CAP: usize = 16;
        let mut w: DedupWindow<u64> = DedupWindow::new(CAP);
        for id in 0..1000u64 {
            assert!(w.remember(id), "first delivery of {id} must be new");
            assert!(!w.remember(id), "immediate duplicate of {id} must drop");
            assert!(!w.remember(id));
            assert!(w.len() <= CAP, "window exceeded its cap at id {id}");
        }
        assert_eq!(w.len(), CAP);
        // The horizon is FIFO over *new* ids: duplicates never re-insert,
        // so exactly the last CAP distinct ids remain.
        for old in 0..(1000 - CAP as u64) {
            assert!(!w.contains(&old), "evicted id {old} still remembered");
        }
        for recent in (1000 - CAP as u64)..1000 {
            assert!(w.contains(&recent), "recent id {recent} fell out early");
        }
    }

    #[test]
    fn evicts_oldest_first() {
        let mut w: DedupWindow<u64> = DedupWindow::new(2);
        assert!(w.remember(1));
        assert!(w.remember(2));
        assert!(w.remember(3)); // evicts 1
        assert!(!w.contains(&1));
        assert!(w.contains(&2));
        assert!(w.remember(1), "evicted ids may be re-remembered");
    }
}

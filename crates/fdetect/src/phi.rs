//! The phi-accrual failure detector with SWIM-style suspicion tracking.
//!
//! Instead of a binary "alive until N missed probes" verdict, a phi-accrual
//! detector (Hayashibara et al., SRDS 2004) keeps a sliding window of
//! inter-arrival times per peer and outputs a *suspicion level*
//! `phi(t) = -log10(P(next arrival later than t))` under a normal
//! distribution fitted to the window. On a lossy or slow link the window
//! absorbs the longer gaps, so the same silence that would trip a fixed
//! `3 × interval` deadline yields a low phi — the detector adapts to the
//! link instead of evicting a live peer.
//!
//! Crossing the threshold does not kill the peer either: the detector
//! moves it to *suspect* and the protocol layer is expected to launch
//! SWIM-style indirect probes (ask `k` intermediaries to ping the suspect
//! on our behalf). Only when the confirmation grace expires with no proof
//! of life — direct or relayed — does [`FailureDetector::evaluate`] return
//! [`Verdict::Dead`].
//!
//! Everything here is pure state driven by the simulated clock: no wall
//! time, no hidden randomness, so detection decisions are deterministic
//! and replayable.

use std::collections::{BTreeMap, VecDeque};

use vbundle_sim::{SimDuration, SimTime};

/// Tunables of the phi-accrual detector.
#[derive(Debug, Clone, PartialEq)]
pub struct PhiConfig {
    /// Inter-arrival samples kept per peer.
    pub window: usize,
    /// Suspicion level at which a peer becomes suspect. Phi 8 corresponds
    /// to a false-positive probability of 1e-8 under the fitted model.
    pub threshold: f64,
    /// Floor on the fitted standard deviation: very regular arrival
    /// streams (a deterministic simulator is the extreme case) would
    /// otherwise make the detector hair-triggered.
    pub min_std_dev: SimDuration,
    /// Expected inter-arrival time before any sample has been observed;
    /// per-peer bootstrap estimates (e.g. probe interval + RTT) override
    /// this via [`FailureDetector::observe_with_estimate`].
    pub first_interval: SimDuration,
    /// Slack added to the fitted mean — tolerated silence beyond the
    /// expected cadence before phi starts to climb.
    pub acceptable_pause: SimDuration,
    /// How long a suspect may redeem itself (e.g. through an indirect
    /// probe relayed by an intermediary) before it is declared dead.
    pub confirm_timeout: SimDuration,
    /// Intermediaries asked to ping a newly suspected peer (SWIM's `k`).
    pub indirect_probes: usize,
}

impl Default for PhiConfig {
    fn default() -> Self {
        PhiConfig {
            window: 16,
            threshold: 8.0,
            min_std_dev: SimDuration::from_millis(200),
            first_interval: SimDuration::from_secs(1),
            acceptable_pause: SimDuration::ZERO,
            confirm_timeout: SimDuration::from_secs(3),
            indirect_probes: 3,
        }
    }
}

impl PhiConfig {
    /// Sets the suspicion threshold.
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }

    /// Sets the confirmation grace a suspect gets before eviction.
    pub fn with_confirm_timeout(mut self, timeout: SimDuration) -> Self {
        self.confirm_timeout = timeout;
        self
    }

    /// Sets the indirect-probe fan-out.
    pub fn with_indirect_probes(mut self, k: usize) -> Self {
        self.indirect_probes = k;
        self
    }
}

/// A bounded window of inter-arrival times for one peer.
#[derive(Debug, Clone)]
pub struct ArrivalWindow {
    intervals: VecDeque<u64>, // micros
    last: Option<SimTime>,
    cap: usize,
    first_estimate: u64, // micros
}

impl ArrivalWindow {
    /// An empty window that will treat `first_estimate` as the expected
    /// cadence until real samples arrive.
    pub fn new(cap: usize, first_estimate: SimDuration) -> Self {
        ArrivalWindow {
            intervals: VecDeque::with_capacity(cap.max(1)),
            last: None,
            cap: cap.max(1),
            first_estimate: first_estimate.as_micros().max(1),
        }
    }

    /// Starts the silence clock without recording an interval — call when
    /// a peer first becomes interesting, so that it can accrue suspicion
    /// even if it never sends anything.
    pub fn observe(&mut self, now: SimTime) {
        if self.last.is_none() {
            self.last = Some(now);
        }
    }

    /// Records a proof-of-life arrival.
    pub fn record(&mut self, now: SimTime) {
        if let Some(last) = self.last {
            if self.intervals.len() == self.cap {
                self.intervals.pop_front();
            }
            self.intervals
                .push_back(now.saturating_since(last).as_micros());
        }
        self.last = Some(now);
    }

    /// When the peer last proved itself (or started being observed).
    pub fn last_seen(&self) -> Option<SimTime> {
        self.last
    }

    /// Number of recorded inter-arrival samples.
    pub fn samples(&self) -> usize {
        self.intervals.len()
    }

    /// Fitted mean inter-arrival time in microseconds.
    fn mean_micros(&self) -> f64 {
        if self.intervals.is_empty() {
            self.first_estimate as f64
        } else {
            self.intervals.iter().sum::<u64>() as f64 / self.intervals.len() as f64
        }
    }

    /// Fitted standard deviation in microseconds, floored at `min_std`.
    fn std_micros(&self, min_std: f64) -> f64 {
        if self.intervals.len() < 2 {
            return min_std;
        }
        let mean = self.mean_micros();
        let var = self
            .intervals
            .iter()
            .map(|&x| {
                let d = x as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / (self.intervals.len() - 1) as f64;
        var.sqrt().max(min_std)
    }

    /// The suspicion level at `now`: `-log10(P(arrival later than now))`
    /// under a normal fit of the window (logistic approximation to the
    /// normal CDF, as in the Akka/Cassandra implementations).
    pub fn phi(&self, now: SimTime, min_std: SimDuration, pause: SimDuration) -> f64 {
        let Some(last) = self.last else {
            return 0.0;
        };
        let elapsed = now.saturating_since(last).as_micros() as f64;
        let mean = self.mean_micros() + pause.as_micros() as f64;
        let std = self.std_micros(min_std.as_micros().max(1) as f64);
        let y = (elapsed - mean) / std;
        let e = (-y * (1.5976 + 0.070566 * y * y)).exp();
        let p_later = if elapsed > mean {
            e / (1.0 + e)
        } else {
            1.0 - 1.0 / (1.0 + e)
        };
        -p_later.max(f64::MIN_POSITIVE).log10()
    }
}

/// What [`FailureDetector::evaluate`] concluded about a peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Suspicion below threshold; keep probing normally.
    Alive,
    /// Phi crossed the threshold just now: the caller should launch
    /// indirect probes through `indirect_probes` intermediaries.
    NewlySuspect,
    /// Already suspect, confirmation grace still running.
    Suspect,
    /// The grace expired with no proof of life: evict.
    Dead,
}

/// A multi-peer phi-accrual detector with SWIM suspicion state.
///
/// `K` identifies a peer (a node id, or a `(group, child)` link). All maps
/// are ordered so iteration — and therefore every downstream decision — is
/// deterministic.
#[derive(Debug, Clone)]
pub struct FailureDetector<K: Ord + Copy> {
    peers: BTreeMap<K, PeerState>,
    config: PhiConfig,
}

#[derive(Debug, Clone)]
struct PeerState {
    window: ArrivalWindow,
    suspect_since: Option<SimTime>,
}

impl<K: Ord + Copy> FailureDetector<K> {
    /// Creates a detector with the given tunables.
    pub fn new(config: PhiConfig) -> Self {
        FailureDetector {
            peers: BTreeMap::new(),
            config,
        }
    }

    /// The tunables in effect.
    pub fn config(&self) -> &PhiConfig {
        &self.config
    }

    fn entry(&mut self, key: K, now: SimTime, estimate: SimDuration) -> &mut PeerState {
        let window = self.config.window;
        let st = self.peers.entry(key).or_insert_with(|| PeerState {
            window: ArrivalWindow::new(window, estimate),
            suspect_since: None,
        });
        st.window.observe(now);
        st
    }

    /// Starts tracking `key` (idempotent), with the config's default
    /// cadence estimate.
    pub fn observe(&mut self, key: K, now: SimTime) {
        let estimate = self.config.first_interval;
        self.entry(key, now, estimate);
    }

    /// Starts tracking `key` with an explicit cadence estimate — e.g.
    /// probe interval plus the peer's RTT sampled from the latency model.
    pub fn observe_with_estimate(&mut self, key: K, now: SimTime, estimate: SimDuration) {
        self.entry(key, now, estimate);
    }

    /// Records a proof of life for `key` and clears any suspicion.
    pub fn heartbeat(&mut self, key: K, now: SimTime) {
        let estimate = self.config.first_interval;
        let st = self.entry(key, now, estimate);
        st.window.record(now);
        st.suspect_since = None;
    }

    /// The current suspicion level for `key` (0 if untracked).
    pub fn phi(&self, key: &K, now: SimTime) -> f64 {
        self.peers
            .get(key)
            .map(|st| {
                st.window
                    .phi(now, self.config.min_std_dev, self.config.acceptable_pause)
            })
            .unwrap_or(0.0)
    }

    /// Whether `key` is currently under suspicion.
    pub fn is_suspect(&self, key: &K) -> bool {
        self.peers
            .get(key)
            .is_some_and(|st| st.suspect_since.is_some())
    }

    /// Classifies `key` at `now`, advancing the suspicion state machine.
    pub fn evaluate(&mut self, key: K, now: SimTime) -> Verdict {
        let threshold = self.config.threshold;
        let confirm = self.config.confirm_timeout;
        let min_std = self.config.min_std_dev;
        let pause = self.config.acceptable_pause;
        let estimate = self.config.first_interval;
        let st = self.entry(key, now, estimate);
        if st.window.phi(now, min_std, pause) < threshold {
            st.suspect_since = None;
            return Verdict::Alive;
        }
        match st.suspect_since {
            None => {
                st.suspect_since = Some(now);
                Verdict::NewlySuspect
            }
            Some(since) if now.saturating_since(since) >= confirm => Verdict::Dead,
            Some(_) => Verdict::Suspect,
        }
    }

    /// Stops tracking `key` (evicted, departed, or no longer a neighbor).
    pub fn forget(&mut self, key: &K) {
        self.peers.remove(key);
    }

    /// Keeps only the peers the predicate approves of.
    pub fn retain(&mut self, mut f: impl FnMut(&K) -> bool) {
        self.peers.retain(|k, _| f(k));
    }

    /// Drops all peer state (e.g. after a restart: pre-crash arrival
    /// history would read as ancient silence and evict everyone).
    pub fn clear(&mut self) {
        self.peers.clear();
    }

    /// Number of peers currently tracked.
    pub fn tracked(&self) -> usize {
        self.peers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn phi_grows_with_silence() {
        let mut w = ArrivalWindow::new(8, SimDuration::from_secs(1));
        for s in 0..8 {
            w.record(t(s));
        }
        let min = SimDuration::from_millis(200);
        let p1 = w.phi(t(9), min, SimDuration::ZERO);
        let p2 = w.phi(t(12), min, SimDuration::ZERO);
        assert!(p1 < p2, "phi must be monotone in silence: {p1} vs {p2}");
        assert!(w.phi(t(8), min, SimDuration::ZERO) < 1.0);
        assert!(p2 > 8.0, "5 s of silence on a 1 s cadence is damning: {p2}");
    }

    #[test]
    fn irregular_links_are_tolerated() {
        // Same total silence, but the window has seen multi-second gaps
        // before (a lossy link): phi stays low where the regular stream
        // above would have evicted.
        let mut w = ArrivalWindow::new(8, SimDuration::from_secs(1));
        for &s in &[0u64, 1, 4, 5, 8, 9, 12, 13] {
            w.record(t(s));
        }
        let min = SimDuration::from_millis(200);
        assert!(w.phi(t(16), min, SimDuration::ZERO) < 8.0);
    }

    #[test]
    fn suspect_state_machine_escalates_then_redeems() {
        let mut d: FailureDetector<u64> = FailureDetector::new(
            PhiConfig::default().with_confirm_timeout(SimDuration::from_secs(2)),
        );
        for s in 0..6 {
            d.heartbeat(7, t(s));
        }
        assert_eq!(d.evaluate(7, t(6)), Verdict::Alive);
        // Silence: threshold crossing yields exactly one NewlySuspect.
        assert_eq!(d.evaluate(7, t(9)), Verdict::NewlySuspect);
        assert_eq!(d.evaluate(7, t(10)), Verdict::Suspect);
        // A (relayed) proof of life redeems the suspect.
        d.heartbeat(7, t(10));
        assert_eq!(d.evaluate(7, t(11)), Verdict::Alive);
        // Silence again — longer this time, because the window has now
        // absorbed the 5 s gap and adapted its expectations — and this
        // time nobody vouches: dead after the confirmation grace.
        assert_eq!(d.evaluate(7, t(22)), Verdict::NewlySuspect);
        assert_eq!(d.evaluate(7, t(25)), Verdict::Dead);
    }

    #[test]
    fn observe_alone_accrues_suspicion() {
        let mut d: FailureDetector<u64> = FailureDetector::new(PhiConfig::default());
        d.observe_with_estimate(1, t(0), SimDuration::from_secs(1));
        assert!(matches!(
            d.evaluate(1, t(30)),
            Verdict::NewlySuspect | Verdict::Suspect
        ));
    }

    #[test]
    fn forget_and_clear_reset_state() {
        let mut d: FailureDetector<u64> = FailureDetector::new(PhiConfig::default());
        d.heartbeat(1, t(0));
        d.heartbeat(2, t(0));
        d.forget(&1);
        assert_eq!(d.tracked(), 1);
        d.clear();
        assert_eq!(d.tracked(), 0);
        assert_eq!(d.phi(&2, t(5)), 0.0);
    }
}

//! Minimal, dependency-free stand-in for the subset of the `criterion`
//! 0.5 API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this stub instead of the real crate. It keeps the same source
//! shape (`criterion_group!` / `criterion_main!`, `Criterion`,
//! `BenchmarkGroup`, `Bencher::iter` / `iter_batched_ref`) but replaces
//! criterion's statistical machinery with a plain wall-clock mean over
//! `sample_size` iterations, printed to stdout. Good enough to keep the
//! benches compiling, runnable and comparable run-to-run; not a rigorous
//! measurement tool.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets the number of measured iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured iterations for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Declares the per-iteration throughput (recorded for display only).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.sample_size, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_one(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// A benchmark identifier (here: just its display string).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id naming the benchmark after its parameter value.
    pub fn from_parameter(p: impl Display) -> BenchmarkId {
        BenchmarkId(p.to_string())
    }

    /// An id with a function name and a parameter value.
    pub fn new(function: impl Into<String>, p: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{}", function.into(), p))
    }
}

/// Per-iteration work declared for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batching policy for `iter_batched*` (only the label matters here).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
}

/// Passed to each benchmark closure; runs and times the routine.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` once per sample.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        std::hint::black_box(routine());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }

    /// Times `routine` against a fresh, untimed `setup()` value each
    /// sample, passing it by mutable reference.
    pub fn iter_batched_ref<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(&mut I) -> O,
        _size: BatchSize,
    ) {
        let mut input = setup();
        let start = Instant::now();
        std::hint::black_box(routine(&mut input));
        self.elapsed += start.elapsed();
        self.iters += 1;
        drop(input);
    }

    /// Like [`Bencher::iter_batched_ref`], but passes the value by move.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let input = setup();
        let start = Instant::now();
        std::hint::black_box(routine(input));
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

fn run_one(name: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    // One warm-up call, untimed.
    let mut warm = Bencher::default();
    f(&mut warm);

    let mut b = Bencher::default();
    for _ in 0..samples {
        f(&mut b);
    }
    let mean = if b.iters > 0 {
        b.elapsed / b.iters as u32
    } else {
        Duration::ZERO
    };
    println!(
        "bench {name:<40} {mean:>12.3?}/iter over {} iter(s)",
        b.iters
    );
}

/// Declares a benchmark group as a function that runs its targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Prevents the compiler from optimizing a value away (shim over
/// `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("stub/identity", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("stub/group");
        g.sample_size(5);
        g.throughput(Throughput::Elements(3));
        g.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function("batched", |b| {
            b.iter_batched_ref(|| vec![1u8, 2, 3], |v| v.reverse(), BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group!(
        name = stub;
        config = Criterion::default().sample_size(10);
        targets = target
    );

    #[test]
    fn group_runs() {
        stub();
    }
}

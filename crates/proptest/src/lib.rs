//! Minimal, dependency-free stand-in for the subset of the `proptest` 1.x
//! API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this stub instead of the real crate. It supports:
//!
//! - the [`proptest!`] macro (with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(N))]` header),
//! - [`strategy::Strategy`] with `prop_map` / `prop_flat_map`,
//!   [`strategy::Just`], range strategies over the primitive numeric
//!   types, tuple strategies, `Vec<Strategy>` strategies, and a small
//!   character-class subset of string regex strategies (`"[a-z]{1,8}"`),
//! - [`arbitrary::any`] for the primitive integer types and `bool`,
//! - [`collection::vec`] with an exact size or a size range,
//! - `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!` and
//!   `prop_assume!`.
//!
//! Differences from upstream: no shrinking (a failing case panics with
//! the `Debug` rendering of its inputs), and case generation is seeded
//! from a hash of the test name, so every run explores the same inputs.
//! `*.proptest-regressions` files are ignored.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy {
    //! Value-generation strategies (no shrinking).

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Maps generated values to new strategies and draws from those.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn new_value(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    impl Strategy for Range<u128> {
        type Value = u128;
        fn new_value(&self, rng: &mut StdRng) -> u128 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// A `Vec` of strategies yields a `Vec` of one draw from each — the
    /// shape `prop_flat_map` closures commonly return.
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            self.iter().map(|s| s.new_value(rng)).collect()
        }
    }

    /// String strategies from a regex *subset*: a single character class
    /// with a bounded repetition, e.g. `"[a-zA-Z0-9]{1,16}"`.
    impl Strategy for &str {
        type Value = String;
        fn new_value(&self, rng: &mut StdRng) -> String {
            let (alphabet, lo, hi) = parse_class_pattern(self).unwrap_or_else(|| {
                panic!(
                    "unsupported string strategy {self:?}: the in-tree proptest \
                     stub only understands \"[class]{{lo,hi}}\" patterns"
                )
            });
            let len = rng.gen_range(lo..=hi);
            (0..len)
                .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
                .collect()
        }
    }

    /// Parses `"[a-z0-9_]{lo,hi}"` into (alphabet, lo, hi).
    fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class = &rest[..close];
        let reps = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = match reps.split_once(',') {
            Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
            None => {
                let n = reps.trim().parse().ok()?;
                (n, n)
            }
        };
        let mut alphabet = Vec::new();
        let mut chars = class.chars().peekable();
        while let Some(c) = chars.next() {
            if chars.peek() == Some(&'-') {
                let mut ahead = chars.clone();
                ahead.next(); // the '-'
                if let Some(end) = ahead.next() {
                    chars = ahead;
                    alphabet.extend((c..=end).filter(|ch| ch.is_ascii()));
                    continue;
                }
            }
            alphabet.push(c);
        }
        if alphabet.is_empty() || lo > hi {
            return None;
        }
        Some((alphabet, lo, hi))
    }
}

pub mod arbitrary {
    //! The [`any`] entry point for "any value of this type".

    use crate::strategy::Strategy;
    use rand::distributions::{Distribution, Standard};
    use rand::rngs::StdRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl<T> Arbitrary for T
    where
        Standard: Distribution<T>,
    {
        fn arbitrary(rng: &mut StdRng) -> T {
            Standard.sample(rng)
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size bound for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A `Vec` whose elements come from `element` and whose length lies in
    /// `size` (an exact `usize` or a range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    //! The driver the [`proptest!`](crate::proptest) macro expands to.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::fmt::Debug;

    /// Runner configuration; only `cases` is honoured by the stub.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed; the test fails.
        Fail(String),
        /// `prop_assume!` rejected the inputs; the case is retried.
        Reject(String),
    }

    impl TestCaseError {
        /// A failed assertion.
        pub fn fail(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(reason.into())
        }

        /// A rejected (filtered-out) input.
        pub fn reject(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(reason.into())
        }
    }

    /// Outcome of one test case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runs `body` against `config.cases` generated inputs, panicking on
    /// the first failing case with the inputs that provoked it.
    ///
    /// The RNG seed is a hash of `name`, so runs are reproducible.
    pub fn run<S>(
        config: &ProptestConfig,
        name: &str,
        strategy: S,
        body: impl Fn(S::Value) -> TestCaseResult,
    ) where
        S: Strategy,
        S::Value: Debug + Clone,
    {
        let mut rng = StdRng::seed_from_u64(fnv1a(name.as_bytes()));
        let mut passed: u32 = 0;
        let mut rejected: u32 = 0;
        let max_rejects = config.cases.saturating_mul(20).max(1000);
        while passed < config.cases {
            let input = strategy.new_value(&mut rng);
            match body(input.clone()) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        panic!(
                            "proptest {name}: too many rejected inputs \
                             ({rejected} rejects for {passed} passes)"
                        );
                    }
                }
                Err(TestCaseError::Fail(reason)) => {
                    panic!(
                        "proptest {name} failed after {passed} passing case(s): \
                         {reason}\n  input: {input:?}"
                    );
                }
            }
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        hash
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]`-style function run over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let strategy = ($($strat,)+);
            $crate::test_runner::run(
                &config,
                stringify!($name),
                strategy,
                |($($arg,)+)| -> $crate::test_runner::TestCaseResult {
                    $body
                    Ok(())
                },
            );
        }
        $crate::__proptest_fns! { config = ($cfg); $($rest)* }
    };
}

/// Like `assert!`, but fails the current proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Like `assert_eq!`, but fails the current proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Like `assert_ne!`, but fails the current proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`: {}",
            left,
            format!($($fmt)+)
        );
    }};
}

/// Rejects the current case (retried with fresh inputs) when `cond` is
/// false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn string_class_pattern_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = "[a-z0-9]{1,8}".new_value(&mut rng);
            assert!((1..=8).contains(&s.len()), "bad length: {s:?}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn vec_sizes_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let exact = crate::collection::vec(0u32..10, 5).new_value(&mut rng);
            assert_eq!(exact.len(), 5);
            let ranged = crate::collection::vec(any::<u64>(), 1..4).new_value(&mut rng);
            assert!((1..=3).contains(&ranged.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro itself: strategies bind, assume rejects, asserts pass.
        #[test]
        fn macro_end_to_end(
            a in 0u32..50,
            b in 10u64..20,
            s in "[a-c]{2,3}",
            v in crate::collection::vec(0.0f64..1.0, 1..5),
        ) {
            prop_assume!(a != 49);
            prop_assert!(a < 50);
            prop_assert!((10..20).contains(&b));
            prop_assert_eq!(s.len(), s.chars().count());
            prop_assert_ne!(v.len(), 0);
        }

        /// prop_map / prop_flat_map / Just compose.
        #[test]
        fn combinators(
            x in (0u32..10).prop_map(|v| v * 2),
            y in Just(7u8),
            z in (1usize..4).prop_flat_map(|n| crate::collection::vec(0u32..10, n)),
        ) {
            prop_assert_eq!(x % 2, 0);
            prop_assert_eq!(y, 7);
            prop_assert!(!z.is_empty() && z.len() < 4);
        }
    }

    #[test]
    fn macro_end_to_end_runs() {
        macro_end_to_end();
        combinators();
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failing_case_panics_with_input() {
        crate::test_runner::run(
            &ProptestConfig::with_cases(10),
            "always_fails",
            0u32..5,
            |v| {
                prop_assert!(v > 100, "v was {v}");
                Ok(())
            },
        );
    }
}

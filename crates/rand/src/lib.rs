//! Minimal, deterministic, dependency-free stand-in for the subset of the
//! `rand` 0.8 API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this stub instead of the real crate. It provides:
//!
//! - [`rngs::StdRng`] — a seedable PRNG (xoshiro256** seeded via
//!   SplitMix64). The *stream* differs from upstream `StdRng` (which is
//!   ChaCha12), but every consumer in this workspace only relies on
//!   determinism for a fixed seed, never on a specific stream.
//! - [`SeedableRng`] with `seed_from_u64` / `from_seed`.
//! - [`RngCore`] and the [`Rng`] extension trait with `gen`, `gen_range`
//!   and `gen_bool`.
//! - [`distributions::Standard`] for the primitive types the workspace
//!   draws (`u8..=u128`, `usize`, `bool`, `f32`, `f64`).
//!
//! Statistical quality: xoshiro256** passes BigCrush; range sampling uses
//! plain modulo reduction, whose bias (< 2⁻⁶⁴ for every range in this
//! workspace) is irrelevant for simulation workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of randomness: the object-safe core every generator implements.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be deterministically seeded.
pub trait SeedableRng: Sized {
    /// The seed type (a fixed-size byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 —
    /// the same convention the real `rand` crate documents.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Convenience methods layered over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any type supported by [`distributions::Standard`].
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Draws a value uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits onto `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can be sampled from — implemented for `Range` and
/// `RangeInclusive` over the primitive numeric types.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                self.start.wrapping_add((draw % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.gen();
                }
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                let draw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                lo.wrapping_add((draw % span) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<u128> for Range<u128> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
        assert!(self.start < self.end, "gen_range: empty range");
        let span = self.end - self.start;
        let draw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        self.start + draw % span
    }
}

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = unit_f64(rng.next_u64()) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = unit_f64(rng.next_u64()) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

pub mod distributions {
    //! The [`Standard`] distribution: full-range draws for primitives.

    use super::{unit_f64, RngCore};

    /// A distribution of values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution: uniform over all values for integers
    /// and `bool`, uniform over `[0, 1)` for floats.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    macro_rules! standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<u128> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Distribution<i128> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i128 {
            (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) as i128
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_f64(rng.next_u64())
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            unit_f64(rng.next_u64()) as f32
        }
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic PRNG: xoshiro256**.
    ///
    /// Not the same stream as upstream `rand`'s ChaCha12-based `StdRng`;
    /// all consumers here depend only on seed-determinism.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0xbf58_476d_1ce4_e5b9,
                    0x94d0_49bb_1331_11eb,
                    0xfe61_5f68_92ca_8cf3,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(0.5..2.5);
            assert!((0.5..2.5).contains(&f));
            let i: usize = rng.gen_range(0..=4);
            assert!(i <= 4);
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_000..4_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn standard_draws_cover_types() {
        let mut rng = StdRng::seed_from_u64(3);
        let _: u64 = rng.gen();
        let _: u128 = rng.gen();
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn unsized_rng_callable_through_generic() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u128 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(4);
        assert_ne!(draw(&mut rng), draw(&mut rng));
    }
}

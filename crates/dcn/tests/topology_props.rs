//! Property tests for the datacenter model: topology indexing is
//! consistent, proximity is a well-behaved hierarchy, and bisection
//! accounting conserves traffic.

use proptest::prelude::*;
use vbundle_dcn::{Bandwidth, ProximityLevel, Topology, TrafficMatrix};

fn arb_topo() -> impl Strategy<Value = Topology> {
    (1u32..5, 1u32..6, 1u32..8).prop_map(|(pods, racks, servers)| {
        Topology::builder()
            .pods(pods)
            .racks_per_pod(racks)
            .servers_per_rack(servers)
            .build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Rack/pod/slot indexing round-trips for every server.
    #[test]
    fn indexing_is_consistent(topo in arb_topo()) {
        let mut seen = 0usize;
        for rack in topo.racks() {
            for server in topo.servers_in_rack(rack) {
                prop_assert_eq!(topo.rack_of(server), rack);
                prop_assert_eq!(topo.pod_of(server), topo.pod_of_rack(rack));
                prop_assert!((topo.slot_of(server) as usize) < topo.rack_size(rack));
                seen += 1;
            }
        }
        prop_assert_eq!(seen, topo.num_servers());
        // servers() iterates the same set.
        prop_assert_eq!(topo.servers().count(), topo.num_servers());
    }

    /// Proximity is symmetric, reflexive at SameServer, and consistent
    /// with the rack/pod structure.
    #[test]
    fn proximity_is_hierarchical(topo in arb_topo(), a in any::<u32>(), b in any::<u32>()) {
        let n = topo.num_servers() as u32;
        let (x, y) = (topo.server((a % n) as usize), topo.server((b % n) as usize));
        prop_assert_eq!(topo.proximity(x, y), topo.proximity(y, x));
        prop_assert_eq!(topo.proximity(x, x), ProximityLevel::SameServer);
        match topo.proximity(x, y) {
            ProximityLevel::SameServer => prop_assert_eq!(x, y),
            ProximityLevel::SameRack => {
                prop_assert_ne!(x, y);
                prop_assert_eq!(topo.rack_of(x), topo.rack_of(y));
            }
            ProximityLevel::SamePod => {
                prop_assert_ne!(topo.rack_of(x), topo.rack_of(y));
                prop_assert_eq!(topo.pod_of(x), topo.pod_of(y));
            }
            ProximityLevel::CrossPod => {
                prop_assert_ne!(topo.pod_of(x), topo.pod_of(y));
            }
        }
    }

    /// Bisection accounting conserves traffic: the four levels sum to the
    /// matrix total, and up-link loads are exactly twice the bisection
    /// traffic (each crossing flow loads both endpoints' ToRs).
    #[test]
    fn bisection_report_conserves(
        topo in arb_topo(),
        flows in proptest::collection::vec((any::<u32>(), any::<u32>(), 0.1f64..500.0), 0..40),
    ) {
        let n = topo.num_servers() as u32;
        let mut tm = TrafficMatrix::new();
        for (src, dst, rate) in flows {
            tm.add_flow(
                topo.server((src % n) as usize),
                topo.server((dst % n) as usize),
                Bandwidth::from_mbps(rate),
            );
        }
        let r = tm.bisection_report(&topo);
        let level_sum = r.intra_server + r.intra_rack + r.cross_rack + r.cross_pod;
        prop_assert!((level_sum.as_mbps() - tm.total().as_mbps()).abs() < 1e-6);
        let uplink_sum: f64 = r.uplinks.iter().map(|u| u.load.as_mbps()).sum();
        prop_assert!(
            (uplink_sum - 2.0 * r.bisection_traffic().as_mbps()).abs() < 1e-6,
            "uplinks {} != 2 × bisection {}",
            uplink_sum,
            r.bisection_traffic().as_mbps()
        );
        let pod_sum: f64 = r.pod_uplinks.iter().map(|b| b.as_mbps()).sum();
        prop_assert!((pod_sum - 2.0 * r.cross_pod.as_mbps()).abs() < 1e-6);
        prop_assert!(r.bisection_fraction() >= 0.0 && r.bisection_fraction() <= 1.0 + 1e-12);
    }
}

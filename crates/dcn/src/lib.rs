//! Datacenter network substrate for the v-Bundle reproduction.
//!
//! The paper (§I–§II) targets today's hierarchical datacenter networks:
//! servers under top-of-rack (ToR) switches whose up-links are 1:5–1:20
//! oversubscribed, making *bi-section bandwidth* the scarce resource that
//! v-Bundle's topology-aware placement preserves.
//!
//! This crate models that substrate:
//!
//! - [`Topology`] — pods → racks → servers with per-level link capacities
//!   and an oversubscription ratio (the paper's testbed uses 8:1);
//! - [`ProximityLevel`] / [`Topology::proximity`] — the physical distance
//!   metric Pastry's neighbor set and the placement algorithm rely on;
//! - [`TopologyLatency`] — a `vbundle_sim::LatencyModel` where cross-rack hops cost
//!   more than intra-rack hops;
//! - [`TrafficMatrix`] / [`BisectionReport`] — accounting of how much
//!   inter-VM traffic crosses rack and pod boundaries, the headline metric
//!   of Figures 7–8.
//!
//! # Example
//!
//! ```
//! use vbundle_dcn::{Topology, TrafficMatrix, Bandwidth};
//!
//! let topo = Topology::builder()
//!     .pods(2)
//!     .racks_per_pod(2)
//!     .servers_per_rack(4)
//!     .oversubscription(8.0)
//!     .build();
//! assert_eq!(topo.num_servers(), 16);
//!
//! let mut tm = TrafficMatrix::new();
//! tm.add_flow(topo.server(0), topo.server(1), Bandwidth::from_mbps(100.0)); // same rack
//! tm.add_flow(topo.server(0), topo.server(15), Bandwidth::from_mbps(50.0)); // cross pod
//! let report = tm.bisection_report(&topo);
//! assert_eq!(report.intra_rack.as_mbps(), 100.0);
//! assert_eq!(report.cross_pod.as_mbps(), 50.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bandwidth;
mod proximity;
mod server;
mod topology;
mod traffic;

pub use bandwidth::Bandwidth;
pub use proximity::{ProximityLevel, TopologyLatency};
pub use server::ServerCapacity;
pub use topology::{DomainKind, PodId, RackId, ServerId, Topology, TopologyBuilder};
pub use traffic::{BisectionReport, Flow, TrafficMatrix, UplinkLoad};

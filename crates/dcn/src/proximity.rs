//! Physical proximity levels and the topology-aware latency model.

use std::sync::Arc;

use vbundle_sim::{ActorId, LatencyModel, SimDuration, TieredLatency};

use crate::{ServerId, Topology};

/// How physically close two servers are in the datacenter hierarchy.
///
/// The discriminant doubles as a numeric distance (0–3), with lower values
/// meaning closer — the proximity metric used by Pastry's neighbor set and
/// by v-Bundle's placement and anycast preferences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u32)]
pub enum ProximityLevel {
    /// The same physical machine.
    SameServer = 0,
    /// Different machines under the same ToR switch.
    SameRack = 1,
    /// Different racks under the same aggregation switch.
    SamePod = 2,
    /// Different pods, traversing the datacenter core.
    CrossPod = 3,
}

impl ProximityLevel {
    /// All levels, closest first.
    pub const ALL: [ProximityLevel; 4] = [
        ProximityLevel::SameServer,
        ProximityLevel::SameRack,
        ProximityLevel::SamePod,
        ProximityLevel::CrossPod,
    ];
}

/// A [`LatencyModel`] that derives per-message delay from the topology:
/// intra-rack hops are cheaper than cross-pod hops.
///
/// Actor index `i` is taken to be server index `i`, the convention used by
/// every simulation harness in this workspace.
///
/// ```
/// use std::sync::Arc;
/// use vbundle_dcn::{Topology, TopologyLatency};
/// use vbundle_sim::{ActorId, LatencyModel};
///
/// let topo = Arc::new(Topology::paper_testbed());
/// let model = TopologyLatency::new(topo);
/// let same_rack = model.latency(ActorId::new(0), ActorId::new(1));
/// let cross_rack = model.latency(ActorId::new(0), ActorId::new(14));
/// assert!(same_rack < cross_rack);
/// ```
#[derive(Debug, Clone)]
pub struct TopologyLatency {
    topo: Arc<Topology>,
    /// One-way delay per proximity level, indexed by `ProximityLevel as u32`.
    levels: [SimDuration; 4],
}

impl TopologyLatency {
    /// Creates a model with representative datacenter delays:
    /// 10 µs loopback, 100 µs intra-rack, 250 µs intra-pod, 500 µs cross-pod.
    pub fn new(topo: Arc<Topology>) -> Self {
        TopologyLatency {
            topo,
            levels: [
                SimDuration::from_micros(10),
                SimDuration::from_micros(100),
                SimDuration::from_micros(250),
                SimDuration::from_micros(500),
            ],
        }
    }

    /// Creates a model matching the paper's measurement environment
    /// (§V.C / Fig. 14): a flat ~10 ms LAN hop regardless of placement,
    /// except for loopback.
    pub fn paper_lan(topo: Arc<Topology>) -> Self {
        TopologyLatency {
            topo,
            levels: [
                SimDuration::from_micros(10),
                SimDuration::from_millis(10),
                SimDuration::from_millis(10),
                SimDuration::from_millis(10),
            ],
        }
    }

    /// Overrides the delay for one proximity level.
    pub fn with_level(mut self, level: ProximityLevel, delay: SimDuration) -> Self {
        self.levels[level as usize] = delay;
        self
    }

    /// The delay configured for `level`.
    pub fn level_delay(&self, level: ProximityLevel) -> SimDuration {
        self.levels[level as usize]
    }

    fn server(&self, actor: ActorId) -> Option<ServerId> {
        if actor.index() < self.topo.num_servers() {
            Some(self.topo.server(actor.index()))
        } else {
            None
        }
    }

    /// Flattens this model into the engine's devirtualized
    /// [`TieredLatency`] fast path: per-server rack and pod index tables
    /// plus the four level delays. Produces the exact same delay for every
    /// actor pair — including out-of-range actors, which pay the
    /// cross-pod worst case in both forms — but costs two array loads
    /// instead of a virtual call and pointer-chased topology lookups on
    /// every send.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use vbundle_dcn::{Topology, TopologyLatency};
    /// use vbundle_sim::{ActorId, LatencyModel};
    ///
    /// let model = TopologyLatency::new(Arc::new(Topology::paper_testbed()));
    /// let fast = model.devirtualize();
    /// let pair = (ActorId::new(0), ActorId::new(14));
    /// assert_eq!(fast.latency(pair.0, pair.1), model.latency(pair.0, pair.1));
    /// ```
    pub fn devirtualize(&self) -> vbundle_sim::Latency {
        let n = self.topo.num_servers();
        let mut rack = Vec::with_capacity(n);
        let mut pod = Vec::with_capacity(n);
        for i in 0..n {
            let server = self.topo.server(i);
            rack.push(self.topo.rack_of(server).index() as u32);
            pod.push(self.topo.pod_of(server).index() as u32);
        }
        vbundle_sim::Latency::Tiered(TieredLatency::new(rack, pod, self.levels))
    }
}

impl LatencyModel for TopologyLatency {
    fn latency(&self, from: ActorId, to: ActorId) -> SimDuration {
        match (self.server(from), self.server(to)) {
            (Some(a), Some(b)) => self.levels[self.topo.proximity(a, b) as usize],
            // Actors outside the server range (e.g. a harness front end)
            // pay the worst-case delay.
            _ => self.levels[ProximityLevel::CrossPod as usize],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_by_distance() {
        assert!(ProximityLevel::SameServer < ProximityLevel::SameRack);
        assert!(ProximityLevel::SameRack < ProximityLevel::SamePod);
        assert!(ProximityLevel::SamePod < ProximityLevel::CrossPod);
        assert_eq!(ProximityLevel::ALL.len(), 4);
        assert_eq!(ProximityLevel::CrossPod as u32, 3);
    }

    #[test]
    fn topology_latency_tiers() {
        let topo = Arc::new(
            Topology::builder()
                .pods(2)
                .racks_per_pod(2)
                .servers_per_rack(2)
                .build(),
        );
        let m = TopologyLatency::new(topo);
        let lat = |a: u32, b: u32| m.latency(ActorId::new(a), ActorId::new(b));
        assert_eq!(lat(0, 0), SimDuration::from_micros(10));
        assert_eq!(lat(0, 1), SimDuration::from_micros(100));
        assert_eq!(lat(0, 2), SimDuration::from_micros(250));
        assert_eq!(lat(0, 4), SimDuration::from_micros(500));
        // Out-of-range actor pays worst case.
        assert_eq!(lat(0, 100), SimDuration::from_micros(500));
    }

    #[test]
    fn paper_lan_is_flat_10ms() {
        let topo = Arc::new(Topology::paper_testbed());
        let m = TopologyLatency::paper_lan(topo);
        assert_eq!(
            m.latency(ActorId::new(0), ActorId::new(14)),
            SimDuration::from_millis(10)
        );
        assert_eq!(
            m.latency(ActorId::new(0), ActorId::new(1)),
            SimDuration::from_millis(10)
        );
    }

    #[test]
    fn devirtualized_model_matches_boxed_exactly() {
        // Irregular topology (uneven rack sizes) plus custom level delays:
        // the flat-table fast path must agree with the boxed model on
        // every pair, including actors past the server range.
        let topo = Arc::new(Topology::builder().rack_sizes(&[3, 1, 2]).build());
        let m = TopologyLatency::new(topo.clone())
            .with_level(ProximityLevel::SamePod, SimDuration::from_millis(1));
        let fast = m.devirtualize();
        for a in 0..topo.num_servers() as u32 + 2 {
            for b in 0..topo.num_servers() as u32 + 2 {
                assert_eq!(
                    fast.latency(ActorId::new(a), ActorId::new(b)),
                    m.latency(ActorId::new(a), ActorId::new(b)),
                    "devirtualized model diverged at ({a},{b})"
                );
            }
        }
    }

    #[test]
    fn with_level_overrides() {
        let topo = Arc::new(Topology::paper_testbed());
        let m = TopologyLatency::new(topo)
            .with_level(ProximityLevel::SameRack, SimDuration::from_millis(2));
        assert_eq!(
            m.level_delay(ProximityLevel::SameRack),
            SimDuration::from_millis(2)
        );
    }
}

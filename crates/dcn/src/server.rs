//! Per-server physical capacities.

use crate::Bandwidth;

/// Physical capacities of one server (the paper's PM).
///
/// The paper's running example (§I, Fig. 1) uses hosts with a 400 Mbps NIC
/// hosting VMs with 100/200 Mbps allocations; the testbed (§IV) uses
/// dual-socket Xeon 5150 machines with 16 GB memory and 1 Gbps NICs.
///
/// ```
/// use vbundle_dcn::{Bandwidth, ServerCapacity};
/// let cap = ServerCapacity::new(4.0, 16_384.0, Bandwidth::from_gbps(1.0));
/// assert_eq!(cap.bandwidth.as_mbps(), 1000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerCapacity {
    /// Compute capacity in abstract CPU units (EC2-style compute units).
    pub cpu_units: f64,
    /// Memory in megabytes.
    pub memory_mb: f64,
    /// NIC bandwidth.
    pub bandwidth: Bandwidth,
}

impl ServerCapacity {
    /// Creates a capacity description.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `cpu_units` or `memory_mb` is negative.
    pub fn new(cpu_units: f64, memory_mb: f64, bandwidth: Bandwidth) -> Self {
        debug_assert!(cpu_units >= 0.0 && memory_mb >= 0.0);
        ServerCapacity {
            cpu_units,
            memory_mb,
            bandwidth,
        }
    }

    /// The paper's testbed server: 4 cores, 16 GB, 1 Gbps NIC.
    pub fn paper_testbed() -> Self {
        ServerCapacity::new(4.0, 16_384.0, Bandwidth::from_gbps(1.0))
    }

    /// The paper's Figure 1 example host: 2 cores, 4 GB, 400 Mbps NIC.
    pub fn figure1_example() -> Self {
        ServerCapacity::new(2.0, 4_096.0, Bandwidth::from_mbps(400.0))
    }
}

impl Default for ServerCapacity {
    fn default() -> Self {
        ServerCapacity::paper_testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper() {
        let t = ServerCapacity::paper_testbed();
        assert_eq!(t.memory_mb, 16_384.0);
        assert_eq!(t.bandwidth, Bandwidth::from_gbps(1.0));
        let f = ServerCapacity::figure1_example();
        assert_eq!(f.bandwidth, Bandwidth::from_mbps(400.0));
        assert_eq!(ServerCapacity::default(), t);
    }
}

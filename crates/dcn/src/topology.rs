//! Hierarchical datacenter topology: pods → racks → servers.

use crate::{Bandwidth, ProximityLevel, ServerCapacity};

/// Identifies a physical server (the paper's PM) within a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServerId(pub(crate) u32);

/// Identifies a rack (one top-of-rack switch) within a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RackId(pub(crate) u32);

/// Identifies a pod (one aggregation-switch domain) within a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PodId(pub(crate) u32);

impl ServerId {
    /// The dense index of this server, `0..topology.num_servers()`.
    ///
    /// Server indexes double as simulation [`ActorId`](vbundle_sim::ActorId)
    /// indexes throughout the workspace.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl RackId {
    /// The dense index of this rack, `0..topology.num_racks()`.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl PodId {
    /// The dense index of this pod, `0..topology.num_pods()`.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ServerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pm{}", self.0)
    }
}

/// A failure-domain granularity: everything behind one shared piece of
/// infrastructure that can die at once.
///
/// The survivable-placement layer (core) and the domain-crash fault
/// injectors (chaos) both speak in these terms: a **rack** shares a ToR
/// switch and usually a power feed; a **pod** shares an aggregation
/// switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DomainKind {
    /// One top-of-rack switch domain.
    Rack,
    /// One aggregation-switch (pod) domain.
    Pod,
}

impl std::fmt::Display for DomainKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DomainKind::Rack => write!(f, "rack"),
            DomainKind::Pod => write!(f, "pod"),
        }
    }
}

#[derive(Debug, Clone)]
struct RackInfo {
    pod: PodId,
    first_server: u32,
    num_servers: u32,
}

/// A hierarchical datacenter network.
///
/// Regular topologies are `pods × racks_per_pod × servers_per_rack`;
/// irregular rack sizes (like the paper's 4/4/4/3 testbed) are supported via
/// [`TopologyBuilder::rack_sizes`]. See the [crate docs](crate) for an
/// example.
#[derive(Debug, Clone)]
pub struct Topology {
    racks: Vec<RackInfo>,
    server_rack: Vec<RackId>,
    num_pods: u32,
    capacity: ServerCapacity,
    oversubscription: f64,
}

impl Topology {
    /// Starts building a topology.
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    /// The paper's real testbed (§IV): 15 servers over 4 edge switches
    /// (4/4/4/3), 1 Gbps ports, 8:1 oversubscription.
    pub fn paper_testbed() -> Topology {
        Topology::builder()
            .rack_sizes(&[4, 4, 4, 3])
            .server_capacity(ServerCapacity::paper_testbed())
            .oversubscription(8.0)
            .build()
    }

    /// The paper's large-scale simulation (§IV): H = 3000 servers, drawn in
    /// Figures 7–9 as ~75 racks of 40 servers, here 5 pods × 15 racks.
    pub fn simulation_3000() -> Topology {
        Topology::builder()
            .pods(5)
            .racks_per_pod(15)
            .servers_per_rack(40)
            .server_capacity(ServerCapacity::paper_testbed())
            .oversubscription(8.0)
            .build()
    }

    /// A `k`-ary fat-tree (Al-Fares et al., the topology the paper's
    /// related work \[11\]\[18\] targets): `k` pods, each with `k/2` edge
    /// switches (racks) of `k/2` servers — `k³/4` servers total.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not an even number ≥ 2.
    ///
    /// ```
    /// use vbundle_dcn::Topology;
    /// let t = Topology::fat_tree(4);
    /// assert_eq!(t.num_servers(), 16);
    /// assert_eq!(t.num_pods(), 4);
    /// assert_eq!(t.num_racks(), 8);
    /// ```
    pub fn fat_tree(k: u32) -> Topology {
        assert!(
            k >= 2 && k.is_multiple_of(2),
            "fat-tree arity must be even and ≥ 2"
        );
        Topology::builder()
            .pods(k)
            .racks_per_pod(k / 2)
            .servers_per_rack(k / 2)
            .server_capacity(ServerCapacity::paper_testbed())
            // A proper fat-tree is rearrangeably non-blocking (1:1), but
            // real deployments trim the core; keep the builder's ratio
            // overridable and default to 1:1 here.
            .oversubscription(1.0)
            .build()
    }

    /// Total number of servers.
    pub fn num_servers(&self) -> usize {
        self.server_rack.len()
    }

    /// Total number of racks (ToR switches).
    pub fn num_racks(&self) -> usize {
        self.racks.len()
    }

    /// Total number of pods (aggregation domains).
    pub fn num_pods(&self) -> usize {
        self.num_pods as usize
    }

    /// The server with dense index `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.num_servers()`.
    pub fn server(&self, index: usize) -> ServerId {
        assert!(index < self.num_servers(), "server index out of range");
        ServerId(index as u32)
    }

    /// Iterates over all servers in index order.
    pub fn servers(&self) -> impl Iterator<Item = ServerId> + '_ {
        (0..self.num_servers() as u32).map(ServerId)
    }

    /// Iterates over all racks in index order.
    pub fn racks(&self) -> impl Iterator<Item = RackId> + '_ {
        (0..self.num_racks() as u32).map(RackId)
    }

    /// The rack hosting `server`.
    pub fn rack_of(&self, server: ServerId) -> RackId {
        self.server_rack[server.index()]
    }

    /// The pod containing `server`.
    pub fn pod_of(&self, server: ServerId) -> PodId {
        self.racks[self.rack_of(server).index()].pod
    }

    /// The pod containing `rack`.
    pub fn pod_of_rack(&self, rack: RackId) -> PodId {
        self.racks[rack.index()].pod
    }

    /// The position of `server` inside its rack, `0..rack size`.
    pub fn slot_of(&self, server: ServerId) -> u32 {
        let rack = &self.racks[self.rack_of(server).index()];
        server.0 - rack.first_server
    }

    /// The servers in `rack`, in slot order.
    pub fn servers_in_rack(&self, rack: RackId) -> impl Iterator<Item = ServerId> + '_ {
        let info = &self.racks[rack.index()];
        (info.first_server..info.first_server + info.num_servers).map(ServerId)
    }

    /// Number of servers in `rack`.
    pub fn rack_size(&self, rack: RackId) -> usize {
        self.racks[rack.index()].num_servers as usize
    }

    /// The uniform per-server capacity.
    pub fn capacity(&self) -> ServerCapacity {
        self.capacity
    }

    /// The configured ToR up-link oversubscription ratio (e.g. 8.0 for the
    /// paper's 8:1 testbed).
    pub fn oversubscription(&self) -> f64 {
        self.oversubscription
    }

    /// Up-link capacity of a rack's ToR switch: the sum of its servers' NIC
    /// bandwidth divided by the oversubscription ratio.
    pub fn tor_uplink_capacity(&self, rack: RackId) -> Bandwidth {
        let size = self.rack_size(rack) as f64;
        self.capacity.bandwidth * size / self.oversubscription
    }

    /// Physical proximity of two servers, the metric behind Pastry's
    /// neighbor set and the topology-aware latency model.
    pub fn proximity(&self, a: ServerId, b: ServerId) -> ProximityLevel {
        if a == b {
            ProximityLevel::SameServer
        } else if self.rack_of(a) == self.rack_of(b) {
            ProximityLevel::SameRack
        } else if self.pod_of(a) == self.pod_of(b) {
            ProximityLevel::SamePod
        } else {
            ProximityLevel::CrossPod
        }
    }

    /// Numeric distance between two servers: 0 same server, 1 same rack,
    /// 2 same pod, 3 cross pod.
    pub fn distance(&self, a: ServerId, b: ServerId) -> u32 {
        self.proximity(a, b) as u32
    }

    /// The rack with dense index `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.num_racks()`.
    pub fn rack(&self, index: usize) -> RackId {
        assert!(index < self.num_racks(), "rack index out of range");
        RackId(index as u32)
    }

    /// The pod with dense index `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.num_pods()`.
    pub fn pod(&self, index: usize) -> PodId {
        assert!(index < self.num_pods(), "pod index out of range");
        PodId(index as u32)
    }

    /// Iterates over all pods in index order.
    pub fn pods(&self) -> impl Iterator<Item = PodId> + '_ {
        (0..self.num_pods).map(PodId)
    }

    /// The racks belonging to `pod`, in index order.
    pub fn racks_in_pod(&self, pod: PodId) -> impl Iterator<Item = RackId> + '_ {
        self.racks
            .iter()
            .enumerate()
            .filter(move |(_, info)| info.pod == pod)
            .map(|(i, _)| RackId(i as u32))
    }

    /// The servers belonging to `pod`, in index order.
    pub fn servers_in_pod(&self, pod: PodId) -> impl Iterator<Item = ServerId> + '_ {
        self.servers().filter(move |&s| self.pod_of(s) == pod)
    }

    /// How many failure domains of `kind` the topology has.
    pub fn num_domains(&self, kind: DomainKind) -> usize {
        match kind {
            DomainKind::Rack => self.num_racks(),
            DomainKind::Pod => self.num_pods(),
        }
    }

    /// The dense index of the `kind`-domain containing `server`.
    pub fn domain_of(&self, server: ServerId, kind: DomainKind) -> usize {
        match kind {
            DomainKind::Rack => self.rack_of(server).index(),
            DomainKind::Pod => self.pod_of(server).index(),
        }
    }

    /// The servers inside the `kind`-domain with dense index `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for `kind`.
    pub fn domain_servers(&self, kind: DomainKind, index: usize) -> Vec<ServerId> {
        match kind {
            DomainKind::Rack => self.servers_in_rack(self.rack(index)).collect(),
            DomainKind::Pod => self.servers_in_pod(self.pod(index)).collect(),
        }
    }

    /// Number of servers inside the `kind`-domain with dense index `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for `kind`.
    pub fn domain_size(&self, kind: DomainKind, index: usize) -> usize {
        match kind {
            DomainKind::Rack => self.rack_size(self.rack(index)),
            DomainKind::Pod => self.servers_in_pod(self.pod(index)).count(),
        }
    }

    /// True when `a` and `b` sit in different `kind`-domains — the
    /// disjointness predicate survivable placement uses when it reserves
    /// backup capacity away from the primary.
    pub fn domain_disjoint(&self, kind: DomainKind, a: ServerId, b: ServerId) -> bool {
        self.domain_of(a, kind) != self.domain_of(b, kind)
    }

    /// True when the tree-fabric path between `a` and `b` still exists
    /// after the `kind`-domain `failed` dies. On a tree there is exactly
    /// one path, so it survives iff neither endpoint (nor, for two
    /// servers of one rack inside a failed pod, their shared switch)
    /// lives inside the failed domain.
    pub fn path_survives(&self, a: ServerId, b: ServerId, kind: DomainKind, failed: usize) -> bool {
        self.domain_of(a, kind) != failed && self.domain_of(b, kind) != failed
    }
}

/// Builder for [`Topology`]. All knobs have paper-flavoured defaults
/// (1 pod × 1 rack would be degenerate, so the default is the 15-server
/// testbed shape only when [`TopologyBuilder::rack_sizes`] is used; the
/// regular path defaults to 1 pod, 4 racks, 4 servers).
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    pods: u32,
    racks_per_pod: u32,
    servers_per_rack: u32,
    rack_sizes: Option<Vec<u32>>,
    capacity: ServerCapacity,
    oversubscription: f64,
}

impl Default for TopologyBuilder {
    fn default() -> Self {
        TopologyBuilder {
            pods: 1,
            racks_per_pod: 4,
            servers_per_rack: 4,
            rack_sizes: None,
            capacity: ServerCapacity::default(),
            oversubscription: 8.0,
        }
    }
}

impl TopologyBuilder {
    /// Sets the number of pods (aggregation domains).
    pub fn pods(&mut self, pods: u32) -> &mut Self {
        self.pods = pods;
        self
    }

    /// Sets the number of racks in each pod.
    pub fn racks_per_pod(&mut self, racks: u32) -> &mut Self {
        self.racks_per_pod = racks;
        self
    }

    /// Sets the number of servers in each rack.
    pub fn servers_per_rack(&mut self, servers: u32) -> &mut Self {
        self.servers_per_rack = servers;
        self
    }

    /// Uses explicit rack sizes (all in one pod), overriding the regular
    /// `pods × racks_per_pod × servers_per_rack` shape. This is how the
    /// paper's irregular 4/4/4/3 testbed is described.
    pub fn rack_sizes(&mut self, sizes: &[u32]) -> &mut Self {
        self.rack_sizes = Some(sizes.to_vec());
        self
    }

    /// Sets the uniform per-server capacity.
    pub fn server_capacity(&mut self, capacity: ServerCapacity) -> &mut Self {
        self.capacity = capacity;
        self
    }

    /// Sets the ToR up-link oversubscription ratio.
    ///
    /// # Panics
    ///
    /// Panics if the ratio is not strictly positive.
    pub fn oversubscription(&mut self, ratio: f64) -> &mut Self {
        assert!(ratio > 0.0, "oversubscription ratio must be positive");
        self.oversubscription = ratio;
        self
    }

    /// Builds the topology.
    ///
    /// # Panics
    ///
    /// Panics if the configuration describes zero servers.
    pub fn build(&self) -> Topology {
        let mut racks = Vec::new();
        let mut server_rack = Vec::new();
        let mut next_server = 0u32;
        let num_pods;
        match &self.rack_sizes {
            Some(sizes) => {
                num_pods = 1;
                for &size in sizes {
                    let rack_id = RackId(racks.len() as u32);
                    racks.push(RackInfo {
                        pod: PodId(0),
                        first_server: next_server,
                        num_servers: size,
                    });
                    for _ in 0..size {
                        server_rack.push(rack_id);
                        next_server += 1;
                    }
                }
            }
            None => {
                num_pods = self.pods;
                for pod in 0..self.pods {
                    for _ in 0..self.racks_per_pod {
                        let rack_id = RackId(racks.len() as u32);
                        racks.push(RackInfo {
                            pod: PodId(pod),
                            first_server: next_server,
                            num_servers: self.servers_per_rack,
                        });
                        for _ in 0..self.servers_per_rack {
                            server_rack.push(rack_id);
                            next_server += 1;
                        }
                    }
                }
            }
        }
        assert!(
            !server_rack.is_empty(),
            "topology must contain at least one server"
        );
        Topology {
            racks,
            server_rack,
            num_pods,
            capacity: self.capacity,
            oversubscription: self.oversubscription,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_topology_shape() {
        let t = Topology::builder()
            .pods(2)
            .racks_per_pod(3)
            .servers_per_rack(5)
            .build();
        assert_eq!(t.num_servers(), 30);
        assert_eq!(t.num_racks(), 6);
        assert_eq!(t.num_pods(), 2);
        assert_eq!(t.rack_of(t.server(0)), RackId(0));
        assert_eq!(t.rack_of(t.server(5)), RackId(1));
        assert_eq!(t.pod_of(t.server(14)), PodId(0));
        assert_eq!(t.pod_of(t.server(15)), PodId(1));
        assert_eq!(t.slot_of(t.server(7)), 2);
        let rack1: Vec<_> = t.servers_in_rack(RackId(1)).collect();
        assert_eq!(rack1.len(), 5);
        assert_eq!(rack1[0].index(), 5);
    }

    #[test]
    fn paper_testbed_is_irregular() {
        let t = Topology::paper_testbed();
        assert_eq!(t.num_servers(), 15);
        assert_eq!(t.num_racks(), 4);
        assert_eq!(t.rack_size(RackId(3)), 3);
        assert_eq!(t.oversubscription(), 8.0);
        // 4-server rack: 4 × 1000 Mbps / 8 = 500 Mbps uplink.
        assert_eq!(
            t.tor_uplink_capacity(RackId(0)),
            Bandwidth::from_mbps(500.0)
        );
        assert_eq!(
            t.tor_uplink_capacity(RackId(3)),
            Bandwidth::from_mbps(375.0)
        );
    }

    #[test]
    fn fat_tree_shape() {
        let t = Topology::fat_tree(8);
        assert_eq!(t.num_servers(), 8 * 8 * 8 / 4);
        assert_eq!(t.num_pods(), 8);
        assert_eq!(t.num_racks(), 32);
        assert_eq!(t.rack_size(RackId(0)), 4);
        assert_eq!(t.oversubscription(), 1.0);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn fat_tree_odd_arity_rejected() {
        let _ = Topology::fat_tree(3);
    }

    #[test]
    fn simulation_3000_shape() {
        let t = Topology::simulation_3000();
        assert_eq!(t.num_servers(), 3000);
        assert_eq!(t.num_racks(), 75);
        assert_eq!(t.num_pods(), 5);
    }

    #[test]
    fn proximity_levels() {
        let t = Topology::builder()
            .pods(2)
            .racks_per_pod(2)
            .servers_per_rack(2)
            .build();
        let s = |i| t.server(i);
        assert_eq!(t.proximity(s(0), s(0)), ProximityLevel::SameServer);
        assert_eq!(t.proximity(s(0), s(1)), ProximityLevel::SameRack);
        assert_eq!(t.proximity(s(0), s(2)), ProximityLevel::SamePod);
        assert_eq!(t.proximity(s(0), s(4)), ProximityLevel::CrossPod);
        assert_eq!(t.distance(s(0), s(4)), 3);
        assert_eq!(t.distance(s(0), s(1)), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn server_bounds_checked() {
        let t = Topology::paper_testbed();
        let _ = t.server(15);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_topology_rejected() {
        let _ = Topology::builder().pods(0).build();
    }

    #[test]
    fn display_ids() {
        let t = Topology::paper_testbed();
        assert_eq!(format!("{}", t.server(3)), "pm3");
    }

    #[test]
    fn domain_view_enumeration() {
        let t = Topology::builder()
            .pods(2)
            .racks_per_pod(3)
            .servers_per_rack(5)
            .build();
        assert_eq!(t.num_domains(DomainKind::Rack), 6);
        assert_eq!(t.num_domains(DomainKind::Pod), 2);
        assert_eq!(t.pods().count(), 2);
        let pod1_racks: Vec<_> = t.racks_in_pod(t.pod(1)).map(|r| r.index()).collect();
        assert_eq!(pod1_racks, vec![3, 4, 5]);
        let pod1_servers: Vec<_> = t.servers_in_pod(t.pod(1)).map(|s| s.index()).collect();
        assert_eq!(pod1_servers, (15..30).collect::<Vec<_>>());
        assert_eq!(t.domain_of(t.server(7), DomainKind::Rack), 1);
        assert_eq!(t.domain_of(t.server(7), DomainKind::Pod), 0);
        assert_eq!(t.domain_size(DomainKind::Rack, 2), 5);
        assert_eq!(t.domain_size(DomainKind::Pod, 0), 15);
        assert_eq!(
            t.domain_servers(DomainKind::Rack, 1)
                .iter()
                .map(|s| s.index())
                .collect::<Vec<_>>(),
            vec![5, 6, 7, 8, 9]
        );
    }

    #[test]
    fn domain_disjointness_and_path_survival() {
        let t = Topology::builder()
            .pods(2)
            .racks_per_pod(2)
            .servers_per_rack(2)
            .build();
        let s = |i| t.server(i);
        assert!(!t.domain_disjoint(DomainKind::Rack, s(0), s(1)));
        assert!(t.domain_disjoint(DomainKind::Rack, s(0), s(2)));
        assert!(!t.domain_disjoint(DomainKind::Pod, s(0), s(2)));
        assert!(t.domain_disjoint(DomainKind::Pod, s(0), s(4)));
        // Rack 0 dies: paths touching servers 0–1 are gone, others live.
        assert!(!t.path_survives(s(0), s(2), DomainKind::Rack, 0));
        assert!(t.path_survives(s(2), s(4), DomainKind::Rack, 0));
        // Pod 1 dies: cross-pod path from 0 to 4 is gone.
        assert!(!t.path_survives(s(0), s(4), DomainKind::Pod, 1));
        assert!(t.path_survives(s(0), s(2), DomainKind::Pod, 1));
    }

    #[test]
    #[should_panic(expected = "rack index out of range")]
    fn rack_bounds_checked() {
        let t = Topology::paper_testbed();
        let _ = t.rack(4);
    }

    #[test]
    #[should_panic(expected = "pod index out of range")]
    fn pod_bounds_checked() {
        let t = Topology::paper_testbed();
        let _ = t.pod(1);
    }

    #[test]
    fn domain_kind_display() {
        assert_eq!(DomainKind::Rack.to_string(), "rack");
        assert_eq!(DomainKind::Pod.to_string(), "pod");
    }

    #[test]
    fn single_rack_topology_has_no_disjoint_pair() {
        // One rack, one pod: every pair shares both domains, so no backup
        // site can ever be domain-disjoint and a rack crash severs every
        // path. Survivable placement must detect this shape (num_domains
        // < 2) and exempt the caps rather than loop forever.
        let t = Topology::builder()
            .pods(1)
            .racks_per_pod(1)
            .servers_per_rack(4)
            .build();
        assert_eq!(t.num_domains(DomainKind::Rack), 1);
        assert_eq!(t.num_domains(DomainKind::Pod), 1);
        for a in t.servers() {
            for b in t.servers() {
                assert!(!t.domain_disjoint(DomainKind::Rack, a, b));
                assert!(!t.domain_disjoint(DomainKind::Pod, a, b));
                assert!(!t.path_survives(a, b, DomainKind::Rack, 0));
                assert!(!t.path_survives(a, b, DomainKind::Pod, 0));
            }
        }
        // A self-path is still "a path": it survives any *other* domain's
        // death (no other domain exists here, but the predicate must not
        // claim survival of the only one).
        let s0 = t.server(0);
        assert!(!t.path_survives(s0, s0, DomainKind::Rack, 0));
    }

    #[test]
    fn single_pod_multi_rack_falls_back_to_rack_disjointness() {
        // Fewer than 2 pods: pod-disjoint placement is impossible
        // (Survivable exemption), but rack-disjoint pairs still exist and
        // rack-level path survival still discriminates.
        let t = Topology::builder()
            .pods(1)
            .racks_per_pod(3)
            .servers_per_rack(2)
            .build();
        assert_eq!(t.num_domains(DomainKind::Pod), 1);
        let (a, b) = (t.server(0), t.server(2));
        assert!(!t.domain_disjoint(DomainKind::Pod, a, b));
        assert!(t.domain_disjoint(DomainKind::Rack, a, b));
        assert!(t.path_survives(a, b, DomainKind::Rack, 2));
        assert!(!t.path_survives(a, b, DomainKind::Rack, 0));
        // The sole pod dying takes everything with it.
        assert!(!t.path_survives(a, b, DomainKind::Pod, 0));
    }

    #[test]
    fn pod_crash_takes_backup_server_with_it() {
        // The failover blind spot: a backup site that is rack-disjoint
        // from its primary but shares the primary's pod is not protected
        // against a pod crash — both copies die. The predicates must
        // report that honestly so placement pays for cross-pod sites.
        let t = Topology::builder()
            .pods(2)
            .racks_per_pod(2)
            .servers_per_rack(2)
            .build();
        let primary = t.server(0); // pod 0, rack 0
        let same_pod_backup = t.server(2); // pod 0, rack 1
        let cross_pod_backup = t.server(4); // pod 1, rack 2
        assert!(t.domain_disjoint(DomainKind::Rack, primary, same_pod_backup));
        assert!(!t.domain_disjoint(DomainKind::Pod, primary, same_pod_backup));
        let dead_pod = t.pod_of(primary).index();
        // Pod 0 dies: the same-pod backup dies with the primary — no
        // surviving path reaches it from anywhere, not even from a live
        // pod-1 server.
        for alive in t.servers_in_pod(t.pod(1)) {
            assert!(!t.path_survives(alive, same_pod_backup, DomainKind::Pod, dead_pod));
        }
        // The cross-pod backup remains reachable from every pod-1 server.
        for alive in t.servers_in_pod(t.pod(1)) {
            assert!(t.path_survives(alive, cross_pod_backup, DomainKind::Pod, dead_pod));
        }
        assert!(t.domain_disjoint(DomainKind::Pod, primary, cross_pod_backup));
    }
}

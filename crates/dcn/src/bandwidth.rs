//! The [`Bandwidth`] quantity type.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A network bandwidth quantity in megabits per second.
///
/// Used for NIC capacities, VM reservations/limits and demands throughout
/// the workspace, so that a capacity can never be silently confused with a
/// CPU share or a byte count.
///
/// ```
/// use vbundle_dcn::Bandwidth;
/// let nic = Bandwidth::from_mbps(400.0);
/// let vm = Bandwidth::from_mbps(100.0);
/// assert_eq!(nic - vm * 3.0, Bandwidth::from_mbps(100.0));
/// assert_eq!(vm / nic, 0.25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Zero bandwidth.
    pub const ZERO: Bandwidth = Bandwidth(0.0);

    /// Creates a bandwidth of `mbps` megabits per second.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `mbps` is negative or NaN.
    pub fn from_mbps(mbps: f64) -> Self {
        debug_assert!(mbps >= 0.0, "bandwidth must be non-negative, got {mbps}");
        Bandwidth(mbps)
    }

    /// Creates a bandwidth of `gbps` gigabits per second.
    pub fn from_gbps(gbps: f64) -> Self {
        Bandwidth::from_mbps(gbps * 1000.0)
    }

    /// The value in megabits per second.
    pub fn as_mbps(self) -> f64 {
        self.0
    }

    /// The value in gigabits per second.
    pub fn as_gbps(self) -> f64 {
        self.0 / 1000.0
    }

    /// True if this is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// The smaller of two bandwidths.
    pub fn min(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.min(other.0))
    }

    /// The larger of two bandwidths.
    pub fn max(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.max(other.0))
    }

    /// Subtraction clamped at zero (capacity can never go negative).
    pub fn saturating_sub(self, other: Bandwidth) -> Bandwidth {
        Bandwidth((self.0 - other.0).max(0.0))
    }

    /// This bandwidth as a fraction of `capacity`, or 0 for zero capacity.
    pub fn fraction_of(self, capacity: Bandwidth) -> f64 {
        if capacity.0 == 0.0 {
            0.0
        } else {
            self.0 / capacity.0
        }
    }
}

impl Add for Bandwidth {
    type Output = Bandwidth;
    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 + rhs.0)
    }
}

impl AddAssign for Bandwidth {
    fn add_assign(&mut self, rhs: Bandwidth) {
        self.0 += rhs.0;
    }
}

impl Sub for Bandwidth {
    type Output = Bandwidth;
    /// # Panics
    ///
    /// Panics in debug builds if the result would be negative; use
    /// [`Bandwidth::saturating_sub`] when underflow is expected.
    fn sub(self, rhs: Bandwidth) -> Bandwidth {
        debug_assert!(
            self.0 >= rhs.0 - 1e-9,
            "bandwidth subtraction underflow: {} - {}",
            self.0,
            rhs.0
        );
        Bandwidth((self.0 - rhs.0).max(0.0))
    }
}

impl SubAssign for Bandwidth {
    fn sub_assign(&mut self, rhs: Bandwidth) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Bandwidth {
    type Output = Bandwidth;
    fn mul(self, rhs: f64) -> Bandwidth {
        Bandwidth(self.0 * rhs)
    }
}

impl Div<f64> for Bandwidth {
    type Output = Bandwidth;
    fn div(self, rhs: f64) -> Bandwidth {
        Bandwidth(self.0 / rhs)
    }
}

impl Div for Bandwidth {
    type Output = f64;
    /// Dimensionless ratio of two bandwidths.
    fn div(self, rhs: Bandwidth) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Bandwidth {
    fn sum<I: Iterator<Item = Bandwidth>>(iter: I) -> Bandwidth {
        iter.fold(Bandwidth::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} Mbps", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_units() {
        assert_eq!(Bandwidth::from_gbps(1.0).as_mbps(), 1000.0);
        assert_eq!(Bandwidth::from_mbps(500.0).as_gbps(), 0.5);
        assert!(Bandwidth::ZERO.is_zero());
    }

    #[test]
    fn arithmetic() {
        let a = Bandwidth::from_mbps(100.0);
        let b = Bandwidth::from_mbps(40.0);
        assert_eq!(a + b, Bandwidth::from_mbps(140.0));
        assert_eq!(a - b, Bandwidth::from_mbps(60.0));
        assert_eq!(a * 2.0, Bandwidth::from_mbps(200.0));
        assert_eq!(a / 4.0, Bandwidth::from_mbps(25.0));
        assert_eq!(b / a, 0.4);
        assert_eq!(b.saturating_sub(a), Bandwidth::ZERO);
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
    }

    #[test]
    fn fraction_handles_zero_capacity() {
        assert_eq!(Bandwidth::from_mbps(10.0).fraction_of(Bandwidth::ZERO), 0.0);
        assert_eq!(
            Bandwidth::from_mbps(10.0).fraction_of(Bandwidth::from_mbps(40.0)),
            0.25
        );
    }

    #[test]
    fn sum_over_iterator() {
        let total: Bandwidth = (1..=4).map(|i| Bandwidth::from_mbps(i as f64)).sum();
        assert_eq!(total, Bandwidth::from_mbps(10.0));
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Bandwidth::from_mbps(12.5)), "12.500 Mbps");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    #[cfg(debug_assertions)]
    fn negative_construction_panics() {
        let _ = Bandwidth::from_mbps(-1.0);
    }
}

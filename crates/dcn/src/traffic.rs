//! Traffic matrices and bisection-bandwidth accounting.
//!
//! Figures 7–8 of the paper argue that v-Bundle's placement minimizes the
//! inter-VM traffic that must traverse ToR up-links. [`TrafficMatrix`]
//! holds server-to-server flow rates, and [`TrafficMatrix::bisection_report`]
//! classifies them by the highest network layer they touch and computes the
//! load each rack's up-link would carry.

use crate::{Bandwidth, ProximityLevel, RackId, ServerId, Topology};

/// One directed server-to-server flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Flow {
    /// Sending server.
    pub src: ServerId,
    /// Receiving server.
    pub dst: ServerId,
    /// Flow rate.
    pub rate: Bandwidth,
}

/// A collection of server-to-server flows.
#[derive(Debug, Clone, Default)]
pub struct TrafficMatrix {
    flows: Vec<Flow>,
}

impl TrafficMatrix {
    /// Creates an empty traffic matrix.
    pub fn new() -> Self {
        TrafficMatrix::default()
    }

    /// Adds a directed flow of `rate` from `src` to `dst`.
    pub fn add_flow(&mut self, src: ServerId, dst: ServerId, rate: Bandwidth) {
        self.flows.push(Flow { src, dst, rate });
    }

    /// The flows added so far.
    pub fn flows(&self) -> &[Flow] {
        &self.flows
    }

    /// Number of flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True if no flows were added.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Total offered load across all flows.
    pub fn total(&self) -> Bandwidth {
        self.flows.iter().map(|f| f.rate).sum()
    }

    /// Classifies every flow by proximity level and computes per-rack
    /// up-link loads.
    ///
    /// # Panics
    ///
    /// Panics if a flow references a server outside `topo`.
    pub fn bisection_report(&self, topo: &Topology) -> BisectionReport {
        let mut by_level = [Bandwidth::ZERO; 4];
        let mut uplink_load = vec![Bandwidth::ZERO; topo.num_racks()];
        for flow in &self.flows {
            let level = topo.proximity(flow.src, flow.dst);
            by_level[level as usize] += flow.rate;
            if level >= ProximityLevel::SamePod {
                // The flow leaves the source rack's ToR and enters the
                // destination rack's ToR.
                uplink_load[topo.rack_of(flow.src).index()] += flow.rate;
                uplink_load[topo.rack_of(flow.dst).index()] += flow.rate;
            }
        }
        let mut pod_load = vec![Bandwidth::ZERO; topo.num_pods()];
        for flow in &self.flows {
            if topo.proximity(flow.src, flow.dst) == ProximityLevel::CrossPod {
                pod_load[topo.pod_of(flow.src).index()] += flow.rate;
                pod_load[topo.pod_of(flow.dst).index()] += flow.rate;
            }
        }
        let uplinks: Vec<UplinkLoad> = topo
            .racks()
            .map(|rack| UplinkLoad {
                rack,
                load: uplink_load[rack.index()],
                capacity: topo.tor_uplink_capacity(rack),
            })
            .collect();
        BisectionReport {
            intra_server: by_level[ProximityLevel::SameServer as usize],
            intra_rack: by_level[ProximityLevel::SameRack as usize],
            cross_rack: by_level[ProximityLevel::SamePod as usize],
            cross_pod: by_level[ProximityLevel::CrossPod as usize],
            uplinks,
            pod_uplinks: pod_load,
        }
    }
}

impl FromIterator<Flow> for TrafficMatrix {
    fn from_iter<I: IntoIterator<Item = Flow>>(iter: I) -> Self {
        TrafficMatrix {
            flows: iter.into_iter().collect(),
        }
    }
}

impl Extend<Flow> for TrafficMatrix {
    fn extend<I: IntoIterator<Item = Flow>>(&mut self, iter: I) {
        self.flows.extend(iter);
    }
}

/// Load versus capacity on one rack's ToR up-link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UplinkLoad {
    /// The rack whose up-link this is.
    pub rack: RackId,
    /// Traffic crossing this up-link (in either direction).
    pub load: Bandwidth,
    /// The up-link's capacity under the configured oversubscription.
    pub capacity: Bandwidth,
}

impl UplinkLoad {
    /// Load as a fraction of capacity (may exceed 1.0 when saturated).
    pub fn utilization(&self) -> f64 {
        self.load.fraction_of(self.capacity)
    }
}

/// How a traffic matrix decomposes over the datacenter hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct BisectionReport {
    /// Traffic between VMs on the same server (never touches the network).
    pub intra_server: Bandwidth,
    /// Traffic between servers under the same ToR.
    pub intra_rack: Bandwidth,
    /// Traffic between racks within one pod (crosses ToR up-links).
    pub cross_rack: Bandwidth,
    /// Traffic between pods (crosses ToR up-links and the core).
    pub cross_pod: Bandwidth,
    /// Per-rack ToR up-link loads.
    pub uplinks: Vec<UplinkLoad>,
    /// Per-pod aggregation-to-core up-link loads (cross-pod traffic only),
    /// indexed by pod.
    pub pod_uplinks: Vec<Bandwidth>,
}

impl BisectionReport {
    /// Total traffic in the matrix.
    pub fn total(&self) -> Bandwidth {
        self.intra_server + self.intra_rack + self.cross_rack + self.cross_pod
    }

    /// Traffic that crosses at least one ToR up-link — the bi-section
    /// bandwidth consumption Figures 7–8 minimize.
    pub fn bisection_traffic(&self) -> Bandwidth {
        self.cross_rack + self.cross_pod
    }

    /// Bi-section traffic as a fraction of all traffic (0 when idle).
    pub fn bisection_fraction(&self) -> f64 {
        self.bisection_traffic().fraction_of(self.total())
    }

    /// The most utilized up-link, or `None` for an empty topology.
    pub fn max_uplink(&self) -> Option<&UplinkLoad> {
        self.uplinks
            .iter()
            .max_by(|a, b| a.utilization().total_cmp(&b.utilization()))
    }

    /// Mean up-link utilization over all racks.
    pub fn mean_uplink_utilization(&self) -> f64 {
        if self.uplinks.is_empty() {
            return 0.0;
        }
        self.uplinks.iter().map(|u| u.utilization()).sum::<f64>() / self.uplinks.len() as f64
    }

    /// Number of up-links carrying more load than their capacity.
    pub fn saturated_uplinks(&self) -> usize {
        self.uplinks
            .iter()
            .filter(|u| u.utilization() > 1.0)
            .count()
    }

    /// The heaviest-loaded pod up-link, if any pod carries core traffic.
    pub fn max_pod_uplink(&self) -> Option<Bandwidth> {
        self.pod_uplinks
            .iter()
            .copied()
            .max_by(|a, b| a.as_mbps().total_cmp(&b.as_mbps()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        // 2 pods × 2 racks × 2 servers: servers 0-1 rack0, 2-3 rack1 (pod0),
        // 4-5 rack2, 6-7 rack3 (pod1).
        Topology::builder()
            .pods(2)
            .racks_per_pod(2)
            .servers_per_rack(2)
            .build()
    }

    #[test]
    fn classifies_flows_by_level() {
        let t = topo();
        let mut tm = TrafficMatrix::new();
        tm.add_flow(t.server(0), t.server(0), Bandwidth::from_mbps(10.0));
        tm.add_flow(t.server(0), t.server(1), Bandwidth::from_mbps(20.0));
        tm.add_flow(t.server(0), t.server(2), Bandwidth::from_mbps(30.0));
        tm.add_flow(t.server(0), t.server(6), Bandwidth::from_mbps(40.0));
        let r = tm.bisection_report(&t);
        assert_eq!(r.intra_server.as_mbps(), 10.0);
        assert_eq!(r.intra_rack.as_mbps(), 20.0);
        assert_eq!(r.cross_rack.as_mbps(), 30.0);
        assert_eq!(r.cross_pod.as_mbps(), 40.0);
        assert_eq!(r.total().as_mbps(), 100.0);
        assert_eq!(r.bisection_traffic().as_mbps(), 70.0);
        assert!((r.bisection_fraction() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn uplink_loads_count_both_ends() {
        let t = topo();
        let mut tm = TrafficMatrix::new();
        tm.add_flow(t.server(0), t.server(6), Bandwidth::from_mbps(100.0));
        let r = tm.bisection_report(&t);
        // rack0 (src) and rack3 (dst) each carry the flow; racks 1-2 idle.
        assert_eq!(r.uplinks[0].load.as_mbps(), 100.0);
        assert_eq!(r.uplinks[1].load.as_mbps(), 0.0);
        assert_eq!(r.uplinks[2].load.as_mbps(), 0.0);
        assert_eq!(r.uplinks[3].load.as_mbps(), 100.0);
        // Uplink capacity: 2 servers × 1000 Mbps / 8 = 250 Mbps.
        assert_eq!(r.uplinks[0].capacity.as_mbps(), 250.0);
        assert!((r.uplinks[0].utilization() - 0.4).abs() < 1e-12);
        let max = r.max_uplink().unwrap();
        assert!([0, 3].contains(&max.rack.index())); // both carry the flow

        assert_eq!(r.saturated_uplinks(), 0);
    }

    #[test]
    fn saturation_detected() {
        let t = topo();
        let mut tm = TrafficMatrix::new();
        tm.add_flow(t.server(0), t.server(6), Bandwidth::from_mbps(300.0));
        let r = tm.bisection_report(&t);
        assert_eq!(r.saturated_uplinks(), 2);
        assert!(r.max_uplink().unwrap().utilization() > 1.0);
    }

    #[test]
    fn intra_rack_spares_uplinks() {
        let t = topo();
        let mut tm = TrafficMatrix::new();
        tm.add_flow(t.server(0), t.server(1), Bandwidth::from_mbps(500.0));
        let r = tm.bisection_report(&t);
        assert!(r.uplinks.iter().all(|u| u.load.is_zero()));
        assert_eq!(r.bisection_fraction(), 0.0);
    }

    #[test]
    fn collect_and_extend() {
        let t = topo();
        let mut tm: TrafficMatrix = vec![Flow {
            src: t.server(0),
            dst: t.server(1),
            rate: Bandwidth::from_mbps(5.0),
        }]
        .into_iter()
        .collect();
        tm.extend([Flow {
            src: t.server(2),
            dst: t.server(3),
            rate: Bandwidth::from_mbps(5.0),
        }]);
        assert_eq!(tm.len(), 2);
        assert!(!tm.is_empty());
        assert_eq!(tm.total().as_mbps(), 10.0);
    }

    #[test]
    fn empty_matrix_report() {
        let t = topo();
        let r = TrafficMatrix::new().bisection_report(&t);
        assert_eq!(r.total(), Bandwidth::ZERO);
        assert_eq!(r.bisection_fraction(), 0.0);
        assert_eq!(r.mean_uplink_utilization(), 0.0);
        assert_eq!(r.max_pod_uplink(), Some(Bandwidth::ZERO));
    }

    #[test]
    fn pod_uplinks_count_only_cross_pod_traffic() {
        let t = topo();
        let mut tm = TrafficMatrix::new();
        // Cross-rack within pod 0: no pod uplink load.
        tm.add_flow(t.server(0), t.server(2), Bandwidth::from_mbps(100.0));
        // Cross-pod: both pods loaded.
        tm.add_flow(t.server(0), t.server(6), Bandwidth::from_mbps(40.0));
        let r = tm.bisection_report(&t);
        assert_eq!(r.pod_uplinks.len(), 2);
        assert_eq!(r.pod_uplinks[0].as_mbps(), 40.0);
        assert_eq!(r.pod_uplinks[1].as_mbps(), 40.0);
        assert_eq!(r.max_pod_uplink(), Some(Bandwidth::from_mbps(40.0)));
    }
}

//! A ready-made Scribe client that runs the aggregation service alone.
//!
//! The v-Bundle controller embeds [`Aggregator`] next to its shuffling
//! logic; this standalone client serves the aggregation-only experiments
//! (Fig. 14's latency measurement, Table I's overhead micro-benchmarks)
//! and doubles as the reference for how to wire the component.

use vbundle_pastry::NodeHandle;
use vbundle_scribe::{GroupId, ScribeClient, ScribeCtx};

use crate::{AggMsg, Aggregator, AGG_TICK_TAG};

/// A [`ScribeClient`] whose only job is aggregation.
#[derive(Debug)]
pub struct AggClient {
    /// The embedded aggregation component.
    pub agg: Aggregator,
}

impl AggClient {
    /// Wraps an aggregator.
    pub fn new(agg: Aggregator) -> Self {
        AggClient { agg }
    }
}

impl ScribeClient for AggClient {
    type Msg = AggMsg;

    fn deliver_multicast(
        &mut self,
        ctx: &mut ScribeCtx<'_, '_, '_, '_, AggMsg>,
        _group: GroupId,
        msg: AggMsg,
    ) {
        if let AggMsg::Result {
            topic,
            root,
            version,
            value,
        } = msg
        {
            self.agg.on_result(topic, root, version, value, ctx.now());
        }
    }

    fn on_restart(&mut self, ctx: &mut ScribeCtx<'_, '_, '_, '_, AggMsg>) {
        self.agg.on_restart(ctx);
    }

    fn on_direct(
        &mut self,
        ctx: &mut ScribeCtx<'_, '_, '_, '_, AggMsg>,
        from: NodeHandle,
        msg: AggMsg,
    ) {
        if let AggMsg::Update { topic, value } = msg {
            self.agg.on_update(ctx, from, topic, value);
        }
    }

    fn on_timer(&mut self, ctx: &mut ScribeCtx<'_, '_, '_, '_, AggMsg>, tag: u64) {
        if tag == AGG_TICK_TAG {
            self.agg.on_tick(ctx);
        }
    }

    fn on_child_removed(
        &mut self,
        _ctx: &mut ScribeCtx<'_, '_, '_, '_, AggMsg>,
        group: GroupId,
        child: NodeHandle,
    ) {
        self.agg.on_child_removed(group, child);
    }
}

//! The per-node aggregation component (the paper's "topic manager").
//!
//! Each server stores local `(topic, value)` data and subscribes to one
//! Scribe tree per topic. Periodically (or immediately, in event-driven
//! mode) every node merges its local value with its children's *reduction
//! information bases* and pushes the subtree summary to its parent; the
//! root publishes the global aggregate back down the tree (§III.D).

use std::collections::BTreeMap;

use vbundle_fdetect::{ArrivalWindow, PhiConfig};
use vbundle_pastry::NodeHandle;
use vbundle_scribe::{GroupId, ScribeCtx};
use vbundle_sim::{Message, SimDuration, SimTime};

use crate::robust::{winsorized_combine, Robustness};
use crate::{AggMsg, AggValue};

/// Timer tag the embedding client must route to [`Aggregator::on_tick`].
pub const AGG_TICK_TAG: u64 = 0x5641_0001;

/// When subtree summaries travel up the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateMode {
    /// Leaves push on a fixed period (the paper's 5-minute updating
    /// interval); convergence takes `tree height × interval`.
    Periodic(SimDuration),
    /// Push as soon as the subtree summary changes; convergence takes
    /// `tree height × (hop latency + processing delay)` — the "without
    /// adding updating interval" line of Fig. 14.
    Immediate,
}

/// Tunables of the aggregation service.
#[derive(Debug, Clone)]
pub struct AggregationConfig {
    /// Update propagation mode.
    pub mode: UpdateMode,
    /// Per-node processing time added before each upward push (the paper
    /// measures 1–2 ms per tree level; default 1.5 ms).
    pub processing_delay: SimDuration,
    /// If set, each node tracks the arrival cadence of global results with
    /// a phi-accrual window and expires its cached aggregate once the
    /// publishing root has been silent implausibly long — so a dead root's
    /// last value cannot steer rebalancing forever. `None` keeps cached
    /// aggregates until a newer result supersedes them.
    pub staleness: Option<PhiConfig>,
    /// How incoming contributions are screened and combined. Defaults to
    /// [`Robustness::TrustAll`] — exact, lossless aggregation — because
    /// honest-network tests and the Fig. 14 measurements assert exact sums;
    /// poison-facing deployments opt into [`Robustness::Defensive`].
    pub robustness: Robustness,
}

impl Default for AggregationConfig {
    fn default() -> Self {
        AggregationConfig {
            mode: UpdateMode::Periodic(SimDuration::from_mins(5)),
            processing_delay: SimDuration::from_micros(1500),
            staleness: Some(PhiConfig::default()),
            robustness: Robustness::TrustAll,
        }
    }
}

/// Marker for client message types able to carry [`AggMsg`]s.
///
/// The embedding client (v-Bundle's controller) defines one message enum
/// wrapping both aggregation and shuffling traffic; implementing
/// `From<AggMsg>` + [`TryInto<AggMsg>`] lets the aggregator send through
/// the shared [`ScribeCtx`].
pub trait AggCarrier: Message + Clone + From<AggMsg> {}
impl<M: Message + Clone + From<AggMsg>> AggCarrier for M {}

#[derive(Debug, Default)]
struct TopicState {
    local: AggValue,
    /// Child id → last reported subtree summary (the information base).
    info_base: BTreeMap<u128, AggValue>,
    /// Last summary pushed to the parent (suppresses no-op pushes in
    /// immediate mode).
    last_pushed: Option<AggValue>,
    /// Latest global aggregate received (publishing root, version, value).
    /// Versions are only comparable within one root's publication stream.
    global: Option<(u128, u64, AggValue)>,
    /// Root-only publish counter.
    version: u64,
    /// Last global value this node published as root.
    last_published: Option<AggValue>,
    /// Arrival cadence of accepted global results, for staleness expiry.
    results: Option<ArrivalWindow>,
}

/// The aggregation component one server embeds in its Scribe client.
///
/// The embedding client must:
/// - call [`Aggregator::subscribe`] for each topic,
/// - schedule [`AGG_TICK_TAG`] and route it to [`Aggregator::on_tick`]
///   (periodic mode),
/// - route direct [`AggMsg::Update`]s to [`Aggregator::on_update`],
/// - route multicast [`AggMsg::Result`]s to [`Aggregator::on_result`],
/// - route child-removal events to [`Aggregator::on_child_removed`].
#[derive(Debug)]
pub struct Aggregator {
    topics: BTreeMap<u128, TopicState>,
    config: AggregationConfig,
    rejected: u64,
}

impl Aggregator {
    /// Creates an aggregator with the given configuration.
    pub fn new(config: AggregationConfig) -> Self {
        Aggregator {
            topics: BTreeMap::new(),
            config,
            rejected: 0,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &AggregationConfig {
        &self.config
    }

    /// Contributions (child updates or published results) rejected by
    /// [`Robustness::Defensive`] validation. Always zero under
    /// [`Robustness::TrustAll`].
    pub fn rejected_contributions(&self) -> u64 {
        self.rejected
    }

    /// Subscribes this node to `topic`: joins the Scribe tree and starts
    /// the tick timer (first caller only).
    pub fn subscribe<M: AggCarrier>(
        &mut self,
        ctx: &mut ScribeCtx<'_, '_, '_, '_, M>,
        topic: GroupId,
    ) {
        let first_topic = self.topics.is_empty();
        self.topics.entry(topic.as_u128()).or_default();
        ctx.join(topic);
        if first_topic {
            if let UpdateMode::Periodic(interval) = self.config.mode {
                ctx.schedule(interval, AGG_TICK_TAG);
            }
        }
    }

    /// Registers a topic locally without joining its Scribe group or
    /// arming the tick timer — for offline harnesses and tests that inject
    /// globals directly through [`Aggregator::on_result`].
    pub fn track(&mut self, topic: GroupId) {
        self.topics.entry(topic.as_u128()).or_default();
    }

    /// Topics this node subscribed to.
    pub fn topics(&self) -> Vec<GroupId> {
        let mut v: Vec<GroupId> = self.topics.keys().map(|&k| GroupId::from_u128(k)).collect();
        v.sort();
        v
    }

    /// Sets the node's local sample for `topic` (e.g. its bandwidth
    /// demand in Mbps). In immediate mode this may push an update at once.
    ///
    /// # Panics
    ///
    /// Panics if the topic was never subscribed.
    pub fn set_local<M: AggCarrier>(
        &mut self,
        ctx: &mut ScribeCtx<'_, '_, '_, '_, M>,
        topic: GroupId,
        value: f64,
    ) {
        let st = self
            .topics
            .get_mut(&topic.as_u128())
            .expect("set_local on unsubscribed topic");
        st.local = AggValue::of(value);
        if self.config.mode == UpdateMode::Immediate {
            self.push_subtree(ctx, topic);
        }
    }

    /// The node's current local sample for `topic`.
    pub fn local(&self, topic: GroupId) -> Option<AggValue> {
        self.topics.get(&topic.as_u128()).map(|t| t.local)
    }

    /// The subtree summary this node would currently report.
    pub fn subtree(&self, topic: GroupId) -> AggValue {
        match self.topics.get(&topic.as_u128()) {
            Some(st) => st.info_base.values().fold(st.local, |acc, v| acc.merge(v)),
            None => AggValue::EMPTY,
        }
    }

    /// The latest global aggregate this node has heard for `topic`.
    pub fn global(&self, topic: GroupId) -> Option<AggValue> {
        self.topics
            .get(&topic.as_u128())
            .and_then(|t| t.global.map(|(_, _, v)| v))
    }

    /// Periodic tick: expire stale cached aggregates, push every topic's
    /// subtree summary to the parent (or publish, at the root), then
    /// re-arm the timer.
    pub fn on_tick<M: AggCarrier>(&mut self, ctx: &mut ScribeCtx<'_, '_, '_, '_, M>) {
        self.expire_stale(ctx.now());
        let topics: Vec<u128> = self.topics.keys().copied().collect();
        for t in topics {
            self.push_subtree(ctx, GroupId::from_u128(t));
        }
        if let UpdateMode::Periodic(interval) = self.config.mode {
            ctx.schedule(interval, AGG_TICK_TAG);
        }
    }

    /// Drops cached global aggregates whose publishing root has been silent
    /// implausibly long per the phi fit of its past publication cadence.
    /// One missed round is always tolerated (the pause grace covers a full
    /// periodic interval); sustained silence — a dead or partitioned root —
    /// expires the cache so rebalancing falls back to local knowledge
    /// instead of steering on a ghost value.
    fn expire_stale(&mut self, now: SimTime) {
        let Some(phi) = &self.config.staleness else {
            return;
        };
        let pause = match self.config.mode {
            UpdateMode::Periodic(interval) => phi.acceptable_pause.max(interval),
            UpdateMode::Immediate => phi.acceptable_pause.max(phi.first_interval),
        };
        for st in self.topics.values_mut() {
            let stale = st
                .results
                .as_ref()
                .is_some_and(|w| w.phi(now, phi.min_std_dev, pause) > phi.threshold);
            if stale {
                st.global = None;
                st.results = None;
            }
        }
    }

    /// Re-arms the periodic tick after a node restart: the crash purged
    /// every pending timer, including the one [`Aggregator::subscribe`]
    /// armed. Call from the embedding client's `on_restart` hook.
    pub fn on_restart<M: AggCarrier>(&mut self, ctx: &mut ScribeCtx<'_, '_, '_, '_, M>) {
        if !self.topics.is_empty() {
            if let UpdateMode::Periodic(interval) = self.config.mode {
                ctx.schedule(interval, AGG_TICK_TAG);
            }
        }
    }

    /// A child pushed its subtree summary.
    pub fn on_update<M: AggCarrier>(
        &mut self,
        ctx: &mut ScribeCtx<'_, '_, '_, '_, M>,
        from: NodeHandle,
        topic: GroupId,
        value: AggValue,
    ) {
        if !self.topics.contains_key(&topic.as_u128()) {
            return; // not subscribed (e.g. pure forwarder); drop
        }
        let value = match &self.config.robustness {
            Robustness::TrustAll => value,
            Robustness::Defensive(p) => {
                if p.check(&value).is_err() {
                    // Reject: keep the child's last accepted contribution
                    // (its last-good snapshot) instead of overwriting.
                    self.rejected += 1;
                    return;
                }
                p.clamp(value)
            }
        };
        let st = self
            .topics
            .get_mut(&topic.as_u128())
            .expect("presence checked above");
        st.info_base.insert(from.id.as_u128(), value);
        if self.config.mode == UpdateMode::Immediate {
            self.push_subtree(ctx, topic);
        }
    }

    /// The root published a new global aggregate.
    ///
    /// `root` scopes `version`: results from a root we have not heard
    /// before (a failover successor, or the old root returning) are always
    /// accepted — their version counter is unrelated to the previous
    /// root's, so comparing across roots would wedge the topic on whichever
    /// root happened to have published more rounds.
    ///
    /// `now` feeds the staleness window: accepted results are proof the
    /// publishing root is alive, and their cadence calibrates how much
    /// silence [`Aggregator::on_tick`] tolerates before expiring the cache.
    pub fn on_result(
        &mut self,
        topic: GroupId,
        root: u128,
        version: u64,
        value: AggValue,
        now: SimTime,
    ) {
        if !self.topics.contains_key(&topic.as_u128()) {
            return;
        }
        if let Robustness::Defensive(p) = &self.config.robustness {
            if p.check(&value).is_err() {
                // A poisoned global: keep the last-good cached result.
                self.rejected += 1;
                return;
            }
        }
        let st = self
            .topics
            .get_mut(&topic.as_u128())
            .expect("presence checked above");
        match st.global {
            Some((r, v, _)) if r == root && v >= version => {}
            _ => {
                st.global = Some((root, version, value));
                Self::record_result(&self.config, st, now);
            }
        }
    }

    /// Records an accepted global result in the topic's arrival window.
    fn record_result(config: &AggregationConfig, st: &mut TopicState, now: SimTime) {
        let Some(phi) = &config.staleness else {
            return;
        };
        let estimate = match config.mode {
            UpdateMode::Periodic(interval) => interval,
            UpdateMode::Immediate => phi.first_interval,
        };
        st.results
            .get_or_insert_with(|| ArrivalWindow::new(phi.window, estimate))
            .record(now);
    }

    /// A child left the tree: forget its contribution.
    pub fn on_child_removed(&mut self, topic: GroupId, child: NodeHandle) {
        if let Some(st) = self.topics.get_mut(&topic.as_u128()) {
            st.info_base.remove(&child.id.as_u128());
        }
    }

    fn push_subtree<M: AggCarrier>(
        &mut self,
        ctx: &mut ScribeCtx<'_, '_, '_, '_, M>,
        topic: GroupId,
    ) {
        let me = ctx.self_handle();
        // Prune info-base entries from nodes that are no longer children
        // (tree churn) so stale contributions do not linger.
        let children = ctx.children(topic);
        let Some(st) = self.topics.get_mut(&topic.as_u128()) else {
            return;
        };
        st.info_base
            .retain(|id, _| children.iter().any(|c| c.id.as_u128() == *id));
        let subtree = match &self.config.robustness {
            Robustness::TrustAll => st.info_base.values().fold(st.local, |acc, v| acc.merge(v)),
            Robustness::Defensive(_) => {
                // Winsorized trimmed-mean combine: clamp the extreme
                // contributions (local value included) to the crowd.
                let mut contribs = Vec::with_capacity(1 + st.info_base.len());
                contribs.push(st.local);
                contribs.extend(st.info_base.values().copied());
                winsorized_combine(&contribs)
            }
        };
        if ctx.is_root(topic) {
            // The root's subtree is the global value: publish down. In
            // periodic mode the root re-publishes every round even when
            // unchanged — the downward traffic doubles as tree liveness
            // (a dead child bounces the dissemination, detaching it).
            // Defensive roots additionally bound how far each publication
            // may move the mean versus the last published (epoch-stamped
            // by `version`) value, so surviving poison crawls, not jumps.
            let publish = match &self.config.robustness {
                Robustness::TrustAll => subtree,
                Robustness::Defensive(p) => p.bound_step(st.last_published, subtree),
            };
            if self.config.mode == UpdateMode::Immediate
                && st
                    .last_published
                    .map(|p| p.approx_eq(&publish))
                    .unwrap_or(false)
            {
                return;
            }
            st.version += 1;
            st.last_published = Some(publish);
            st.global = Some((me.id.as_u128(), st.version, publish));
            // The root's own publication is proof of its own liveness.
            Self::record_result(&self.config, st, ctx.now());
            let msg = AggMsg::Result {
                topic,
                root: me.id.as_u128(),
                version: st.version,
                value: publish,
            };
            ctx.multicast(topic, M::from(msg));
        } else if let Some(parent) = ctx.parent(topic) {
            if self.config.mode == UpdateMode::Immediate
                && st
                    .last_pushed
                    .map(|p| p.approx_eq(&subtree))
                    .unwrap_or(false)
            {
                return;
            }
            st.last_pushed = Some(subtree);
            debug_assert_ne!(parent.id, me.id);
            let msg = AggMsg::Update {
                topic,
                value: subtree,
            };
            ctx.send_client_after(parent, M::from(msg), self.config.processing_delay);
        }
        // No parent and not root: still joining; the next tick retries.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOPIC: u128 = 42;

    fn topic() -> GroupId {
        GroupId::from_u128(TOPIC)
    }

    fn periodic(secs: u64) -> Aggregator {
        let mut a = Aggregator::new(AggregationConfig {
            mode: UpdateMode::Periodic(SimDuration::from_secs(secs)),
            ..AggregationConfig::default()
        });
        a.topics.insert(TOPIC, TopicState::default());
        a
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn silent_root_expires_cached_global() {
        let mut a = periodic(10);
        for (v, s) in [(1, 0), (2, 10), (3, 20)] {
            a.on_result(topic(), 5, v, AggValue::of(v as f64), t(s));
        }
        // One missed round is tolerated (pause grace = interval).
        a.expire_stale(t(35));
        assert!(a.global(topic()).is_some());
        // Sustained silence on a 10 s cadence: the ghost value goes.
        a.expire_stale(t(70));
        assert!(a.global(topic()).is_none());
    }

    #[test]
    fn single_result_uses_interval_estimate() {
        let mut a = periodic(10);
        a.on_result(topic(), 5, 1, AggValue::of(1.0), t(0));
        a.expire_stale(t(15));
        assert!(a.global(topic()).is_some(), "within estimate + pause");
        a.expire_stale(t(60));
        assert!(a.global(topic()).is_none(), "way past any plausible round");
    }

    #[test]
    fn disabled_staleness_keeps_ghost_values() {
        let mut a = Aggregator::new(AggregationConfig {
            mode: UpdateMode::Periodic(SimDuration::from_secs(10)),
            staleness: None,
            ..AggregationConfig::default()
        });
        a.topics.insert(TOPIC, TopicState::default());
        a.on_result(topic(), 5, 1, AggValue::of(1.0), t(0));
        a.expire_stale(t(100_000));
        assert!(a.global(topic()).is_some());
    }

    #[test]
    fn defensive_on_result_keeps_last_good_under_poison() {
        let mut a = Aggregator::new(AggregationConfig {
            mode: UpdateMode::Periodic(SimDuration::from_secs(10)),
            robustness: Robustness::defensive(),
            ..AggregationConfig::default()
        });
        a.topics.insert(TOPIC, TopicState::default());
        a.on_result(topic(), 5, 1, AggValue::of(100.0), t(0));

        // A NaN-poisoned publication is rejected; the cached global stays.
        let mut nan = AggValue::of(100.0);
        nan.sum = f64::NAN;
        a.on_result(topic(), 5, 2, nan, t(10));
        assert_eq!(a.global(topic()).unwrap().sum, 100.0);
        assert_eq!(a.rejected_contributions(), 1);

        // A later honest publication is accepted normally.
        a.on_result(topic(), 5, 3, AggValue::of(110.0), t(20));
        assert_eq!(a.global(topic()).unwrap().sum, 110.0);
        assert_eq!(a.rejected_contributions(), 1);
    }

    #[test]
    fn trust_all_accepts_poisoned_results() {
        let mut a = periodic(10);
        let mut nan = AggValue::of(100.0);
        nan.sum = f64::NAN;
        a.on_result(topic(), 5, 1, nan, t(0));
        assert!(a.global(topic()).unwrap().sum.is_nan());
        assert_eq!(a.rejected_contributions(), 0);
    }

    #[test]
    fn new_root_resets_the_cadence_window() {
        let mut a = periodic(10);
        for (v, s) in [(1, 0), (2, 10)] {
            a.on_result(topic(), 5, v, AggValue::of(v as f64), t(s));
        }
        // Failover successor publishes with an unrelated version counter;
        // its arrivals keep feeding the same per-topic window.
        a.on_result(topic(), 9, 1, AggValue::of(7.0), t(30));
        a.expire_stale(t(45));
        assert!(a.global(topic()).is_some());
    }
}

//! The cross-hypervisor aggregation abstraction of v-Bundle (§III.D).
//!
//! Every server stores local `(topic, value)` tuples — e.g.
//! `(BW_Capacity, 1000)`, `(BW_Demand, 620)` — and subscribes to one
//! Scribe tree per topic. Periodically, each leaf pushes its value to its
//! parent; every enclosing subtree merges its children's *reduction
//! information bases* with its own value and pushes upward; the root
//! computes the global aggregate and publishes it back down the tree. This
//! is how every v-Bundle server learns the cluster-wide mean utilization it
//! compares itself against when self-identifying as a load shedder or
//! receiver (§III.C).
//!
//! The component is embeddable: the v-Bundle controller hosts an
//! [`Aggregator`] next to its shuffling logic, while [`AggClient`] runs it
//! standalone for the Fig. 14 / Table I measurements.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use vbundle_aggregation::{AggClient, AggregationConfig, Aggregator, UpdateMode};
//! use vbundle_dcn::Topology;
//! use vbundle_pastry::{overlay, IdAssignment, PastryConfig};
//! use vbundle_scribe::{group_id, Scribe};
//! use vbundle_sim::{ConstantLatency, SimDuration, SimTime};
//!
//! let topo = Arc::new(Topology::paper_testbed());
//! let (mut net, handles) = overlay::launch(
//!     &topo,
//!     IdAssignment::TopologyAware,
//!     PastryConfig::default(),
//!     1,
//!     Box::new(ConstantLatency(SimDuration::from_millis(10))),
//!     |_, _| {
//!         Scribe::new(AggClient::new(Aggregator::new(AggregationConfig {
//!             mode: UpdateMode::Immediate,
//!             ..AggregationConfig::default()
//!         })))
//!     },
//! );
//!
//! // Every server reports bandwidth demand i*10 Mbps on one topic.
//! let t = group_id("BW_Demand");
//! for h in &handles {
//!     net.call(h.actor, |node, ctx| {
//!         node.app_call(ctx, |scribe, actx| {
//!             scribe.client_call(actx, |c, sctx| c.agg.subscribe(sctx, t));
//!         });
//!     });
//! }
//! net.run_until(SimTime::from_secs(2));
//! for (i, h) in handles.iter().enumerate() {
//!     net.call(h.actor, |node, ctx| {
//!         node.app_call(ctx, |scribe, actx| {
//!             scribe.client_call(actx, |c, sctx| {
//!                 c.agg.set_local(sctx, t, (i as f64) * 10.0)
//!             });
//!         });
//!     });
//! }
//! net.run_until(SimTime::from_secs(10));
//!
//! // Every node now knows the global sum: 0+10+...+140 = 1050.
//! for h in &handles {
//!     let global = net
//!         .actor(h.actor)
//!         .app()
//!         .client()
//!         .agg
//!         .global(t)
//!         .expect("global aggregate published");
//!     assert_eq!(global.sum, 1050.0);
//!     assert_eq!(global.count, 15);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aggregator;
mod client;
mod message;
mod robust;
mod value;

pub use aggregator::{AggCarrier, AggregationConfig, Aggregator, UpdateMode, AGG_TICK_TAG};
pub use client::AggClient;
pub use message::AggMsg;
pub use robust::{winsorized_combine, DefensiveParams, RejectReason, Robustness};
pub use value::AggValue;

//! Poison-tolerant combine policies for the aggregation trees.
//!
//! The global mean published by a tree steers every v-Bundle controller's
//! shedder/receiver self-classification, so one lying reporter can whipsaw
//! the whole cluster. This module hardens the tree against *wrong data*
//! (as opposed to the silence and duplication the failure detectors already
//! cover) with three independent layers:
//!
//! 1. **Input validation** — a subtree report must be finite, non-negative,
//!    internally consistent (`min ≤ mean ≤ max`), within the physical
//!    per-sample ceiling, and claim no more nodes than a subtree can
//!    legally contain. Reports failing any rule are rejected outright and
//!    the child's *last accepted* contribution is kept (an epoch-stamped
//!    last-good snapshot: the information base simply is not overwritten).
//! 2. **Winsorized (trimmed-mean) combine** — at every interior node the
//!    single highest- and lowest-mean contributions are clamped to the
//!    nearest other contribution's mean before merging. Unlike a dropping
//!    trim this preserves the honest subtree's node *count*, so the global
//!    `count` stays exact while a stuck-at-zero or inflated child loses its
//!    leverage over the mean.
//! 3. **Bounded publication delta** — the root limits how far the published
//!    global mean may move per publication relative to its last published
//!    value, so even a poison value that survives 1–2 crawls toward the lie
//!    instead of jumping, giving the controller's sanity gate time to react.
//!
//! [`Robustness::TrustAll`] disables all three and is the ablation baseline
//! the `poison_sweep` benchmark measures against.

use crate::AggValue;

/// How an [`Aggregator`](crate::Aggregator) treats incoming contributions.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum Robustness {
    /// Believe every report verbatim (the pre-hardening behavior, kept as
    /// the ablation baseline). Lossless: honest runs aggregate exactly.
    #[default]
    TrustAll,
    /// Validate, clamp, winsorize and bound-step per the parameters.
    Defensive(DefensiveParams),
}

impl Robustness {
    /// Defensive mode with default parameters.
    pub fn defensive() -> Robustness {
        Robustness::Defensive(DefensiveParams::default())
    }
}

/// Why a contribution was rejected by [`DefensiveParams::check`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// A field is NaN or infinite.
    NonFinite,
    /// A negative sum, minimum or maximum (load cannot be negative).
    Negative,
    /// The report claims more samples than a legal subtree can hold.
    CountBound,
    /// `min ≤ mean ≤ max` does not hold — the summary lies about itself.
    Inconsistent,
    /// The mean or maximum exceeds the physical per-sample ceiling.
    OverCapacity,
}

/// Tunables of [`Robustness::Defensive`].
#[derive(Debug, Clone, PartialEq)]
pub struct DefensiveParams {
    /// Physical ceiling on a single sample (e.g. a server's NIC capacity in
    /// Mbps). A subtree of `n` nodes can legally report at most
    /// `n × max_sample` of anything.
    pub max_sample: f64,
    /// Upper bound on the node count a single contribution may claim —
    /// no subtree can be larger than the cluster.
    pub max_subtree_nodes: u64,
    /// Fraction of the last published mean the root may move per
    /// publication (the bounded per-interval delta).
    pub max_step_frac: f64,
    /// Absolute mean delta always allowed per publication, so the global
    /// can move off zero and small topics are not frozen.
    pub max_step_floor: f64,
}

impl Default for DefensiveParams {
    fn default() -> Self {
        DefensiveParams {
            // Generous: 100 Gbps in Mbps, far above the paper's 1 Gbps
            // testbed NICs, so honest traffic never trips it.
            max_sample: 100_000.0,
            max_subtree_nodes: 65_536,
            max_step_frac: 0.5,
            max_step_floor: 10.0,
        }
    }
}

/// Relative slack for internal-consistency float comparisons.
const CONSISTENCY_SLACK: f64 = 1e-6;

impl DefensiveParams {
    /// Validates one contribution against the rules above. Empty values are
    /// legal (a still-joining child has nothing to report — and nothing to
    /// poison).
    pub fn check(&self, v: &AggValue) -> Result<(), RejectReason> {
        if v.is_empty() {
            return Ok(());
        }
        let finite = v.sum.is_finite()
            && v.min.is_none_or(f64::is_finite)
            && v.max.is_none_or(f64::is_finite);
        if !finite {
            return Err(RejectReason::NonFinite);
        }
        if v.sum < 0.0 || v.min.is_some_and(|m| m < 0.0) || v.max.is_some_and(|m| m < 0.0) {
            return Err(RejectReason::Negative);
        }
        if v.count > self.max_subtree_nodes {
            return Err(RejectReason::CountBound);
        }
        let mean = v.sum / v.count as f64;
        let slack = CONSISTENCY_SLACK * (1.0 + mean.abs());
        let (min, max) = (v.min.unwrap_or(mean), v.max.unwrap_or(mean));
        if min > max + slack || mean < min - slack || mean > max + slack {
            return Err(RejectReason::Inconsistent);
        }
        if mean > self.max_sample + slack || max > self.max_sample + slack {
            return Err(RejectReason::OverCapacity);
        }
        Ok(())
    }

    /// Clamps an accepted contribution into `[0, max_sample]` per sample —
    /// a no-op for anything [`check`](DefensiveParams::check) admits, kept
    /// as defense in depth should validation rules and physical ceilings
    /// ever drift apart.
    pub fn clamp(&self, v: AggValue) -> AggValue {
        if v.is_empty() {
            return v;
        }
        let mean = (v.sum / v.count as f64).clamp(0.0, self.max_sample);
        AggValue {
            sum: mean * v.count as f64,
            count: v.count,
            min: v.min.map(|m| m.clamp(0.0, self.max_sample)),
            max: v.max.map(|m| m.clamp(0.0, self.max_sample)),
        }
    }

    /// Limits how far the next published global may move the mean relative
    /// to the last published value. The returned value keeps `next`'s count
    /// (the membership view is not in question, only the magnitude) and
    /// widens `min`/`max` just enough to stay internally consistent.
    pub fn bound_step(&self, last: Option<AggValue>, next: AggValue) -> AggValue {
        let Some(last) = last else { return next };
        let (Some(last_mean), Some(next_mean)) = (last.mean(), next.mean()) else {
            return next;
        };
        let allowed = self.max_step_floor + self.max_step_frac * last_mean.abs();
        let bounded = next_mean.clamp(last_mean - allowed, last_mean + allowed);
        if bounded == next_mean {
            return next;
        }
        AggValue {
            sum: bounded * next.count as f64,
            count: next.count,
            min: next.min.map(|m| m.min(bounded)),
            max: next.max.map(|m| m.max(bounded)),
        }
    }
}

/// Merges contributions after clamping the single highest- and lowest-mean
/// ones to the nearest other contribution's mean (a winsorized trim).
///
/// With two or fewer non-empty contributions there is no "crowd" to trim
/// against and the plain merge is returned. The trim clamps rather than
/// drops, so every honest node under a trimmed subtree still counts toward
/// the global `count`; only the outlier's *magnitude* is reined in. The
/// trimmed contribution's `min`/`max` are clamped into the same bounds so
/// poison cannot ride the extrema fields upward instead.
pub fn winsorized_combine(contribs: &[AggValue]) -> AggValue {
    let mut nonempty: Vec<AggValue> = contribs.iter().copied().filter(|v| !v.is_empty()).collect();
    if nonempty.len() <= 2 {
        return nonempty.iter().fold(AggValue::EMPTY, |acc, v| acc.merge(v));
    }
    let mut ranked: Vec<(usize, f64)> = nonempty
        .iter()
        .enumerate()
        .map(|(i, v)| (i, v.sum / v.count as f64))
        .collect();
    ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    let lo_bound = ranked[1].1;
    let hi_bound = ranked[ranked.len() - 2].1;
    let lo_idx = ranked[0].0;
    let hi_idx = ranked[ranked.len() - 1].0;
    winsorize(&mut nonempty[lo_idx], lo_bound, hi_bound);
    winsorize(&mut nonempty[hi_idx], lo_bound, hi_bound);
    nonempty.iter().fold(AggValue::EMPTY, |acc, v| acc.merge(v))
}

fn winsorize(v: &mut AggValue, lo: f64, hi: f64) {
    debug_assert!(lo <= hi);
    let mean = v.sum / v.count as f64;
    let clamped = mean.clamp(lo, hi);
    v.sum = clamped * v.count as f64;
    v.min = v.min.map(|m| m.clamp(lo, hi));
    v.max = v.max.map(|m| m.clamp(lo, hi));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> DefensiveParams {
        DefensiveParams::default()
    }

    #[test]
    fn check_accepts_honest_and_empty() {
        assert_eq!(p().check(&AggValue::EMPTY), Ok(()));
        let honest: AggValue = vec![10.0, 620.0, 330.0].into_iter().collect();
        assert_eq!(p().check(&honest), Ok(()));
    }

    #[test]
    fn check_rejects_each_poison_shape() {
        let mut nan = AggValue::of(5.0);
        nan.sum = f64::NAN;
        assert_eq!(p().check(&nan), Err(RejectReason::NonFinite));

        let mut inf = AggValue::of(5.0);
        inf.max = Some(f64::INFINITY);
        assert_eq!(p().check(&inf), Err(RejectReason::NonFinite));

        let mut neg = AggValue::of(5.0);
        neg.sum = -5.0;
        neg.min = Some(-5.0);
        assert_eq!(p().check(&neg), Err(RejectReason::Negative));

        let mut fat = AggValue::of(5.0);
        fat.count = 1 << 40;
        assert_eq!(p().check(&fat), Err(RejectReason::CountBound));

        let mut liar = AggValue::of(5.0);
        liar.min = Some(50.0);
        liar.max = Some(60.0);
        assert_eq!(p().check(&liar), Err(RejectReason::Inconsistent));

        let huge = AggValue::of(5.0e9);
        assert_eq!(p().check(&huge), Err(RejectReason::OverCapacity));
    }

    #[test]
    fn frozen_zero_passes_validation() {
        // A stuck-at-zero reporter is *plausible* — range checks cannot
        // catch it; only the trimmed combine / controller gate can.
        let mut frozen = AggValue::of(620.0);
        frozen.sum = 0.0;
        frozen.min = Some(0.0);
        frozen.max = Some(0.0);
        assert_eq!(p().check(&frozen), Ok(()));
    }

    #[test]
    fn clamp_is_identity_on_valid_input() {
        let honest: AggValue = vec![10.0, 620.0].into_iter().collect();
        assert_eq!(p().clamp(honest), honest);
        assert_eq!(p().clamp(AggValue::EMPTY), AggValue::EMPTY);
    }

    #[test]
    fn winsorized_combine_tames_an_outlier() {
        // Nine honest servers near 500 and one stuck at zero.
        let mut contribs: Vec<AggValue> = (0..9)
            .map(|i| AggValue::of(480.0 + i as f64 * 5.0))
            .collect();
        let mut frozen = AggValue::of(500.0);
        frozen.sum = 0.0;
        frozen.min = Some(0.0);
        frozen.max = Some(0.0);
        contribs.push(frozen);

        let robust = winsorized_combine(&contribs);
        assert_eq!(robust.count, 10, "clamping must not lose the node");
        let mean = robust.mean().unwrap();
        assert!(
            (mean - 500.0).abs() < 25.0,
            "outlier clamped to the crowd: mean={mean}"
        );

        // The plain merge, for contrast, is dragged far down.
        let naive = contribs.iter().fold(AggValue::EMPTY, |acc, v| acc.merge(v));
        assert!(naive.mean().unwrap() < 460.0);
    }

    #[test]
    fn winsorized_combine_small_sets_merge_plainly() {
        let a = AggValue::of(1.0);
        let b = AggValue::of(100.0);
        let merged = winsorized_combine(&[a, b, AggValue::EMPTY]);
        assert_eq!(merged, a.merge(&b));
        assert_eq!(winsorized_combine(&[]), AggValue::EMPTY);
    }

    #[test]
    fn winsorized_combine_is_lossless_on_agreeing_inputs() {
        let contribs: Vec<AggValue> = vec![AggValue::of(5.0); 6];
        let merged = winsorized_combine(&contribs);
        assert_eq!(merged.count, 6);
        assert!((merged.sum - 30.0).abs() < 1e-9);
    }

    #[test]
    fn bound_step_limits_mean_jumps() {
        let last = AggValue {
            sum: 1000.0,
            count: 10,
            min: Some(50.0),
            max: Some(150.0),
        }; // mean 100
        let spike = AggValue {
            sum: 100_000.0,
            count: 10,
            min: Some(50.0),
            max: Some(99_000.0),
        }; // mean 10_000
        let bounded = p().bound_step(Some(last), spike);
        // Allowed step: 10 + 0.5 × 100 = 60 → mean at most 160.
        let mean = bounded.mean().unwrap();
        assert!((mean - 160.0).abs() < 1e-9, "mean={mean}");
        assert_eq!(bounded.count, 10);
        assert!(bounded.max.unwrap() >= mean);

        // Small honest drift passes through untouched.
        let drift = AggValue {
            sum: 1100.0,
            count: 10,
            min: Some(50.0),
            max: Some(160.0),
        };
        assert_eq!(p().bound_step(Some(last), drift), drift);
        // First publication is unbounded.
        assert_eq!(p().bound_step(None, spike), spike);
    }
}

//! Aggregation protocol messages.

use vbundle_scribe::GroupId;
use vbundle_sim::{CorruptionMode, Message, MsgCategory};

use crate::AggValue;

/// Messages of the aggregation protocol. They travel inside the embedding
/// client's message enum (which must implement `From<AggMsg>` and,
/// typically, `TryFrom<ClientMsg> for AggMsg` routing).
#[derive(Debug, Clone, PartialEq)]
pub enum AggMsg {
    /// A child pushes its subtree summary to its parent (direct message).
    Update {
        /// The topic (= Scribe group) being aggregated.
        topic: GroupId,
        /// The subtree summary.
        value: AggValue,
    },
    /// The root publishes the global aggregate down the tree (multicast).
    Result {
        /// The topic.
        topic: GroupId,
        /// Id of the root that published this result. Versions are scoped
        /// to the publishing root: after a root failover the new root
        /// starts its own version sequence, and receivers must not compare
        /// it against the old root's.
        root: u128,
        /// Root-assigned publication number; stale results from the *same*
        /// root are ignored.
        version: u64,
        /// The global aggregate.
        value: AggValue,
    },
}

impl Message for AggMsg {
    fn wire_size(&self) -> usize {
        match self {
            // topic + (sum, count, min, max)
            AggMsg::Update { .. } => 16 + 32,
            // topic + root + version + (sum, count, min, max)
            AggMsg::Result { .. } => 16 + 16 + 8 + 32,
        }
    }

    fn category(&self) -> MsgCategory {
        MsgCategory::Payload
    }

    /// Both the upward reports and the downward published globals carry an
    /// [`AggValue`] a poisoned node can mutate — a corrupted *interior*
    /// node corrupts its `Result` disseminations too, which is what gives
    /// different servers divergent views of the global mean.
    fn corrupt(&mut self, mode: CorruptionMode) -> bool {
        match self {
            AggMsg::Update { value, .. } | AggMsg::Result { value, .. } => {
                value.apply_corruption(mode)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbundle_pastry::Id;

    #[test]
    fn sizes() {
        let u = AggMsg::Update {
            topic: Id::from_u128(1),
            value: AggValue::of(3.0),
        };
        assert_eq!(u.wire_size(), 48);
        let r = AggMsg::Result {
            topic: Id::from_u128(1),
            root: 9,
            version: 2,
            value: AggValue::of(3.0),
        };
        assert_eq!(r.wire_size(), 72);
        assert_eq!(u.category(), MsgCategory::Payload);
    }

    #[test]
    fn corrupt_reaches_both_variants() {
        let mut u = AggMsg::Update {
            topic: Id::from_u128(1),
            value: AggValue::of(3.0),
        };
        assert!(u.corrupt(CorruptionMode::Negative));
        let AggMsg::Update { value, .. } = &u else {
            unreachable!()
        };
        assert_eq!(value.sum, -3.0);

        let mut r = AggMsg::Result {
            topic: Id::from_u128(1),
            root: 9,
            version: 2,
            value: AggValue::of(3.0),
        };
        assert!(r.corrupt(CorruptionMode::Nan));
        let AggMsg::Result { value, .. } = &r else {
            unreachable!()
        };
        assert!(value.sum.is_nan());
    }
}

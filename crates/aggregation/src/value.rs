//! The mergeable aggregate value flowing up the trees.

use std::fmt;

use vbundle_sim::CorruptionMode;

/// A commutative, associative summary of a set of samples: sum, count,
/// minimum and maximum (mean is derived). One value type covers every
/// topic the paper aggregates (`BW_Capacity`, `BW_Demand`, configuration
/// counts, …).
///
/// ```
/// use vbundle_aggregation::AggValue;
/// let a = AggValue::of(10.0);
/// let b = AggValue::of(30.0).merge(&AggValue::of(20.0));
/// let all = a.merge(&b);
/// assert_eq!(all.sum, 60.0);
/// assert_eq!(all.count, 3);
/// assert_eq!(all.min, Some(10.0));
/// assert_eq!(all.max, Some(30.0));
/// assert_eq!(all.mean(), Some(20.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AggValue {
    /// Sum of all samples.
    pub sum: f64,
    /// Number of samples.
    pub count: u64,
    /// Smallest sample, `None` when empty.
    pub min: Option<f64>,
    /// Largest sample, `None` when empty.
    pub max: Option<f64>,
}

impl AggValue {
    /// The identity element: no samples.
    pub const EMPTY: AggValue = AggValue {
        sum: 0.0,
        count: 0,
        min: None,
        max: None,
    };

    /// A single sample.
    pub fn of(v: f64) -> AggValue {
        AggValue {
            sum: v,
            count: 1,
            min: Some(v),
            max: Some(v),
        }
    }

    /// Merges two summaries.
    pub fn merge(&self, other: &AggValue) -> AggValue {
        AggValue {
            sum: self.sum + other.sum,
            count: self.count + other.count,
            min: opt_fold(self.min, other.min, f64::min),
            max: opt_fold(self.max, other.max, f64::max),
        }
    }

    /// The mean of the samples, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    /// True if no samples are summarized.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Applies an in-flight corruption fault to this value, returning
    /// `true` if the value actually changed. Empty values have nothing to
    /// corrupt. Used by the fault-injection layer via
    /// [`Message::corrupt`](vbundle_sim::Message::corrupt).
    pub fn apply_corruption(&mut self, mode: CorruptionMode) -> bool {
        if self.is_empty() {
            return false;
        }
        let before = *self;
        match mode {
            CorruptionMode::Nan => {
                self.sum = f64::NAN;
                self.min = self.min.map(|_| f64::NAN);
                self.max = self.max.map(|_| f64::NAN);
            }
            CorruptionMode::Negative => {
                self.sum = -self.sum.abs();
                // Negating swaps which extremum is which.
                let (min, max) = (self.min, self.max);
                self.min = max.map(|v| -v.abs());
                self.max = min.map(|v| -v.abs());
            }
            CorruptionMode::HugeScale => {
                const SCALE: f64 = 1.0e6;
                self.sum *= SCALE;
                self.min = self.min.map(|v| v * SCALE);
                self.max = self.max.map(|v| v * SCALE);
            }
            CorruptionMode::Frozen => {
                // A stuck reporter: claims zero load for its whole subtree.
                // Plausible values — range validation cannot catch this.
                self.sum = 0.0;
                self.min = self.min.map(|_| 0.0);
                self.max = self.max.map(|_| 0.0);
            }
        }
        // NaN never approx_eqs itself, so Nan always reports changed.
        !before.approx_eq(self)
    }

    /// Approximate equality, used to suppress no-op re-publications.
    pub fn approx_eq(&self, other: &AggValue) -> bool {
        fn feq(a: f64, b: f64) -> bool {
            (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
        }
        self.count == other.count
            && feq(self.sum, other.sum)
            && opt_eq(self.min, other.min)
            && opt_eq(self.max, other.max)
    }
}

fn opt_fold(a: Option<f64>, b: Option<f64>, f: impl Fn(f64, f64) -> f64) -> Option<f64> {
    match (a, b) {
        (Some(x), Some(y)) => Some(f(x, y)),
        (Some(x), None) | (None, Some(x)) => Some(x),
        (None, None) => None,
    }
}

fn opt_eq(a: Option<f64>, b: Option<f64>) -> bool {
    match (a, b) {
        (Some(x), Some(y)) => (x - y).abs() <= 1e-9 * (1.0 + x.abs().max(y.abs())),
        (None, None) => true,
        _ => false,
    }
}

impl FromIterator<f64> for AggValue {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> AggValue {
        iter.into_iter()
            .fold(AggValue::EMPTY, |acc, v| acc.merge(&AggValue::of(v)))
    }
}

impl fmt::Display for AggValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.mean() {
            Some(mean) => write!(
                f,
                "n={} sum={:.3} mean={:.3} min={:.3} max={:.3}",
                self.count,
                self.sum,
                mean,
                self.min.unwrap_or(0.0),
                self.max.unwrap_or(0.0)
            ),
            None => write!(f, "n=0 (empty)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_laws() {
        let v = AggValue::of(5.0);
        assert_eq!(v.merge(&AggValue::EMPTY), v);
        assert_eq!(AggValue::EMPTY.merge(&v), v);
        assert!(AggValue::EMPTY.is_empty());
        assert_eq!(AggValue::EMPTY.mean(), None);
    }

    #[test]
    fn merge_is_commutative_and_associative() {
        let a = AggValue::of(1.0);
        let b = AggValue::of(2.0);
        let c = AggValue::of(3.0);
        assert_eq!(a.merge(&b), b.merge(&a));
        assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
    }

    #[test]
    fn collect_from_iterator() {
        let v: AggValue = vec![4.0, 1.0, 7.0].into_iter().collect();
        assert_eq!(v.count, 3);
        assert_eq!(v.sum, 12.0);
        assert_eq!(v.min, Some(1.0));
        assert_eq!(v.max, Some(7.0));
        assert_eq!(v.mean(), Some(4.0));
    }

    #[test]
    fn approx_eq_tolerates_float_noise() {
        let a = AggValue::of(1.0).merge(&AggValue::of(2.0));
        let mut b = a;
        b.sum += 1e-12;
        assert!(a.approx_eq(&b));
        let c = AggValue::of(1.0);
        assert!(!a.approx_eq(&c));
        assert!(AggValue::EMPTY.approx_eq(&AggValue::EMPTY));
    }

    #[test]
    fn corruption_modes_mutate_as_specified() {
        let base: AggValue = vec![10.0, 30.0].into_iter().collect();

        let mut v = base;
        assert!(v.apply_corruption(CorruptionMode::Nan));
        assert!(v.sum.is_nan() && v.min.unwrap().is_nan());

        let mut v = base;
        assert!(v.apply_corruption(CorruptionMode::Negative));
        assert_eq!(v.sum, -40.0);
        assert_eq!((v.min, v.max), (Some(-30.0), Some(-10.0)));

        let mut v = base;
        assert!(v.apply_corruption(CorruptionMode::HugeScale));
        assert_eq!(v.sum, 40.0e6);

        let mut v = base;
        assert!(v.apply_corruption(CorruptionMode::Frozen));
        assert_eq!((v.sum, v.count), (0.0, 2));
        assert_eq!((v.min, v.max), (Some(0.0), Some(0.0)));
    }

    #[test]
    fn corruption_of_empty_is_a_noop() {
        let mut v = AggValue::EMPTY;
        assert!(!v.apply_corruption(CorruptionMode::Nan));
        assert_eq!(v, AggValue::EMPTY);
        // Freezing an already-zero value changes nothing and says so.
        let mut z = AggValue::of(0.0);
        assert!(!z.apply_corruption(CorruptionMode::Frozen));
    }

    #[test]
    fn display_nonempty() {
        assert!(format!("{}", AggValue::EMPTY).contains("n=0"));
        assert!(format!("{}", AggValue::of(2.5)).contains("mean=2.500"));
    }
}

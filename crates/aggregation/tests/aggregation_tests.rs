//! End-to-end tests of the aggregation service: periodic and immediate
//! convergence, multiple topics, churn and failure recovery.

use std::sync::Arc;

use proptest::prelude::*;
use vbundle_aggregation::{AggClient, AggMsg, AggregationConfig, Aggregator, UpdateMode};
use vbundle_dcn::Topology;
use vbundle_pastry::{overlay, IdAssignment, NodeHandle, PastryConfig, PastryMsg, PastryNode};
use vbundle_scribe::{group_id, GroupId, Scribe, ScribeConfig, ScribeMsg};
use vbundle_sim::{ConstantLatency, Engine, SimDuration, SimTime};

type Node = PastryNode<Scribe<AggClient>>;
type Net = Engine<PastryMsg<ScribeMsg<AggMsg>>, Node>;

fn launch(
    servers: usize,
    mode: UpdateMode,
    seed: u64,
    probe: Option<SimDuration>,
) -> (Net, Vec<NodeHandle>, Arc<Topology>) {
    let racks = servers.div_ceil(4) as u32;
    let mut sizes = vec![4u32; racks as usize];
    if !servers.is_multiple_of(4) {
        *sizes.last_mut().unwrap() = (servers % 4) as u32;
    }
    let topo = Arc::new(Topology::builder().rack_sizes(&sizes).build());
    let scribe_config = match probe {
        Some(p) => ScribeConfig::default().with_probe_interval(p),
        None => ScribeConfig::default(),
    };
    let (net, handles) = overlay::launch(
        &topo,
        IdAssignment::TopologyAware,
        PastryConfig::default(),
        seed,
        Box::new(ConstantLatency(SimDuration::from_millis(1))),
        |_, _| {
            Scribe::with_config(
                AggClient::new(Aggregator::new(AggregationConfig {
                    mode,
                    processing_delay: SimDuration::from_micros(1500),
                    ..AggregationConfig::default()
                })),
                scribe_config.clone(),
            )
        },
    );
    (net, handles, topo)
}

fn subscribe_all(net: &mut Net, handles: &[NodeHandle], t: GroupId) {
    for h in handles {
        net.call(h.actor, |node, ctx| {
            node.app_call(ctx, |scribe, actx| {
                scribe.client_call(actx, |c, sctx| c.agg.subscribe(sctx, t));
            });
        });
    }
}

fn set_local(net: &mut Net, h: NodeHandle, t: GroupId, v: f64) {
    net.call(h.actor, |node, ctx| {
        node.app_call(ctx, |scribe, actx| {
            scribe.client_call(actx, |c, sctx| c.agg.set_local(sctx, t, v));
        });
    });
}

fn global_at(net: &Net, h: NodeHandle, t: GroupId) -> Option<vbundle_aggregation::AggValue> {
    net.actor(h.actor).app().client().agg.global(t)
}

#[test]
fn periodic_mode_converges_within_height_times_interval() {
    let interval = SimDuration::from_secs(30);
    let (mut net, handles, _) = launch(20, UpdateMode::Periodic(interval), 1, None);
    let t = group_id("BW_Demand");
    subscribe_all(&mut net, &handles, t);
    net.run_until(SimTime::from_secs(2));
    for (i, h) in handles.iter().enumerate() {
        set_local(&mut net, *h, t, (i + 1) as f64);
    }
    // Tree height for 20 nodes is small; 6 intervals is generous.
    net.run_until(SimTime::from_secs(2 + 6 * 30));
    let want_sum: f64 = (1..=20).map(|v| v as f64).sum();
    for h in &handles {
        let g = global_at(&net, *h, t).expect("converged");
        assert_eq!(g.sum, want_sum);
        assert_eq!(g.count, 20);
        assert_eq!(g.min, Some(1.0));
        assert_eq!(g.max, Some(20.0));
    }
}

#[test]
fn immediate_mode_tracks_changes() {
    let (mut net, handles, _) = launch(12, UpdateMode::Immediate, 3, None);
    let t = group_id("BW_Capacity");
    subscribe_all(&mut net, &handles, t);
    net.run_until(SimTime::from_secs(1));
    for h in &handles {
        set_local(&mut net, *h, t, 100.0);
    }
    net.run_until(SimTime::from_secs(2));
    assert_eq!(global_at(&net, handles[0], t).unwrap().sum, 1200.0);

    // One server's capacity changes; the new global propagates.
    set_local(&mut net, handles[5], t, 500.0);
    net.run_until(SimTime::from_secs(3));
    for h in &handles {
        assert_eq!(global_at(&net, *h, t).unwrap().sum, 1600.0);
    }
}

#[test]
fn two_topics_yield_mean_utilization() {
    // The v-Bundle pattern: BW_Demand / BW_Capacity = mean utilization.
    let (mut net, handles, _) = launch(10, UpdateMode::Immediate, 7, None);
    let cap = group_id("BW_Capacity");
    let dem = group_id("BW_Demand");
    subscribe_all(&mut net, &handles, cap);
    subscribe_all(&mut net, &handles, dem);
    net.run_until(SimTime::from_secs(1));
    for (i, h) in handles.iter().enumerate() {
        set_local(&mut net, *h, cap, 10.0);
        set_local(&mut net, *h, dem, if i < 5 { 9.0 } else { 3.0 });
    }
    net.run_until(SimTime::from_secs(3));
    for h in &handles {
        let c = global_at(&net, *h, cap).unwrap();
        let d = global_at(&net, *h, dem).unwrap();
        let utilization = d.sum / c.sum;
        assert!((utilization - 0.6).abs() < 1e-9, "got {utilization}");
    }
}

#[test]
fn node_failure_drops_contribution_after_repair() {
    let (mut net, handles, _) = launch(
        16,
        UpdateMode::Periodic(SimDuration::from_secs(10)),
        9,
        Some(SimDuration::from_secs(10)),
    );
    let t = group_id("BW_Demand");
    subscribe_all(&mut net, &handles, t);
    net.run_until(SimTime::from_secs(1));
    for h in &handles {
        set_local(&mut net, *h, t, 10.0);
    }
    net.run_until(SimTime::from_secs(60));
    assert_eq!(global_at(&net, handles[0], t).unwrap().sum, 160.0);

    // Kill a node; choose one that is not the root of the topic tree so
    // the root can keep publishing.
    let victim = handles
        .iter()
        .position(|h| net.actor(h.actor).app().group(t).is_some_and(|st| !st.root))
        .expect("non-root exists");
    net.fail(handles[victim].actor);
    net.run_until(SimTime::from_secs(300));

    for (i, h) in handles.iter().enumerate() {
        if i == victim {
            continue;
        }
        let g = global_at(&net, *h, t).expect("still publishing");
        assert_eq!(
            g.count, 15,
            "node {i} still counts the dead node's sample: {g}"
        );
        assert_eq!(g.sum, 150.0);
    }
}

#[test]
fn subtree_reflects_info_base() {
    let (mut net, handles, _) = launch(8, UpdateMode::Immediate, 11, None);
    let t = group_id("probe");
    subscribe_all(&mut net, &handles, t);
    net.run_until(SimTime::from_secs(1));
    for (i, h) in handles.iter().enumerate() {
        set_local(&mut net, *h, t, i as f64);
    }
    net.run_until(SimTime::from_secs(2));
    // The root's subtree is the global sum.
    let root = handles
        .iter()
        .position(|h| net.actor(h.actor).app().group(t).is_some_and(|s| s.root))
        .expect("root exists");
    let subtree = net.actor(handles[root].actor).app().client().agg.subtree(t);
    assert_eq!(subtree.sum, (0..8).map(|v| v as f64).sum::<f64>());
    assert_eq!(subtree.count, 8);
}

#[test]
fn unsubscribed_topics_report_nothing() {
    let (net, handles, _) = launch(4, UpdateMode::Immediate, 13, None);
    let t = group_id("never-subscribed");
    assert!(global_at(&net, handles[0], t).is_none());
    assert!(net
        .actor(handles[0].actor)
        .app()
        .client()
        .agg
        .local(t)
        .is_none());
    assert!(net
        .actor(handles[0].actor)
        .app()
        .client()
        .agg
        .subtree(t)
        .is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The published global aggregate equals the true sum/count/min/max of
    /// the locally set values, regardless of overlay size, seed and values.
    #[test]
    fn prop_global_matches_truth(
        n in 3usize..20,
        seed in any::<u64>(),
        values in proptest::collection::vec(0.0f64..1000.0, 20),
    ) {
        let (mut net, handles, _) = launch(n, UpdateMode::Immediate, seed, None);
        let t = group_id("prop-topic");
        subscribe_all(&mut net, &handles, t);
        net.run_until(SimTime::from_secs(1));
        for (i, h) in handles.iter().enumerate() {
            set_local(&mut net, *h, t, values[i]);
        }
        net.run_until(SimTime::from_secs(5));
        let want: vbundle_aggregation::AggValue =
            values[..n].iter().copied().collect();
        for h in &handles {
            let got = global_at(&net, *h, t).expect("converged");
            prop_assert!(got.approx_eq(&want), "got {got}, want {want}");
        }
    }
}

/// The configured per-node processing delay is observable: convergence of
/// a chain of updates takes at least `hops × processing_delay` beyond the
/// pure network time (the 1–2 ms per-level cost of Fig. 14).
#[test]
fn processing_delay_slows_convergence() {
    let run = |delay_us: u64| {
        let racks = 2u32;
        let topo = Arc::new(
            Topology::builder()
                .pods(1)
                .racks_per_pod(racks)
                .servers_per_rack(8)
                .build(),
        );
        let (mut net, handles) = overlay::launch(
            &topo,
            IdAssignment::Random { seed: 5 },
            PastryConfig::default(),
            5,
            Box::new(ConstantLatency(SimDuration::from_millis(1))),
            |_, _| {
                Scribe::new(AggClient::new(Aggregator::new(AggregationConfig {
                    mode: UpdateMode::Immediate,
                    processing_delay: SimDuration::from_micros(delay_us),
                    ..AggregationConfig::default()
                })))
            },
        );
        let t = group_id("delay-probe");
        for h in &handles {
            net.call(h.actor, |node, ctx| {
                node.app_call(ctx, |scribe, actx| {
                    scribe.client_call(actx, |c, sctx| c.agg.subscribe(sctx, t));
                });
            });
        }
        net.run_until(SimTime::from_secs(5));
        let t0 = net.now();
        for h in &handles {
            net.call(h.actor, |node, ctx| {
                node.app_call(ctx, |scribe, actx| {
                    scribe.client_call(actx, |c, sctx| c.agg.set_local(sctx, t, 1.0));
                });
            });
        }
        // Step until every node's global covers all 16 samples.
        loop {
            if !net.step() {
                break;
            }
            let done = handles.iter().all(|h| {
                net.actor(h.actor)
                    .app()
                    .client()
                    .agg
                    .global(t)
                    .is_some_and(|g| g.count == 16 && (g.sum - 16.0).abs() < 1e-9)
            });
            if done {
                break;
            }
        }
        (net.now() - t0).as_millis_f64()
    };
    let fast = run(0);
    let slow = run(20_000); // 20 ms per hop of processing
                            // At least one upward hop pays the full delay (a flat tree pays it
                            // exactly once, so compare with a small epsilon).
    assert!(
        slow >= fast + 19.9,
        "processing delay not observable: {fast} ms vs {slow} ms"
    );
}

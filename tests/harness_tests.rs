//! Tests of the facade-level trace driver.

use std::sync::Arc;

use vbundle::core::{Cluster, CustomerId, ResourceSpec, VmRecord};
use vbundle::dcn::{Bandwidth, Topology};
use vbundle::harness::TraceDriver;
use vbundle::sim::{SimDuration, SimTime};
use vbundle::workloads::Trace;

fn small_cluster() -> (Cluster, Vec<vbundle::core::VmId>) {
    let topo = Arc::new(
        Topology::builder()
            .pods(1)
            .racks_per_pod(2)
            .servers_per_rack(2)
            .build(),
    );
    let mut cluster = Cluster::builder(topo).seed(3).build();
    let mut vms = Vec::new();
    for server in 0..4usize {
        let id = cluster.alloc_vm_id();
        let vm = VmRecord::new(
            id,
            CustomerId(0),
            ResourceSpec::bandwidth(Bandwidth::ZERO, Bandwidth::from_gbps(1.0)),
        );
        let sid = cluster.topo.server(server);
        cluster.install_vm(sid, vm);
        vms.push(id);
    }
    cluster.reindex();
    (cluster, vms)
}

#[test]
fn trace_driver_applies_demands_each_step() {
    let (mut cluster, vms) = small_cluster();
    let mut driver = TraceDriver::new();
    driver.assign(
        vms[0],
        Trace::step(
            Bandwidth::from_mbps(100.0),
            Bandwidth::from_mbps(700.0),
            SimTime::from_secs(30),
        ),
    );
    driver.assign(vms[1], Trace::constant(Bandwidth::from_mbps(50.0)));
    assert_eq!(driver.len(), 2);
    assert!(!driver.is_empty());

    let mut observations = Vec::new();
    driver.run(
        &mut cluster,
        SimTime::from_secs(60),
        SimDuration::from_secs(10),
        |c| observations.push((c.now().as_micros(), c.utilizations()[0])),
    );
    assert_eq!(observations.len(), 6, "one observation per step");
    // Before the step: 100 Mbps on a 1 Gbps NIC.
    assert!((observations[1].1 - 0.1).abs() < 1e-9);
    // After the step at t=30s the next refresh applies 700 Mbps.
    assert!((observations.last().unwrap().1 - 0.7).abs() < 1e-9);
    assert_eq!(cluster.now(), SimTime::from_secs(60));
}

#[test]
fn trace_driver_follows_migrating_vms() {
    // Demands keep applying by VM id even as reindex() moves hosts; here
    // we move the VM by shutdown+reinstall to simulate a migration.
    let (mut cluster, vms) = small_cluster();
    let mut driver = TraceDriver::new();
    driver.assign(vms[0], Trace::constant(Bandwidth::from_mbps(400.0)));
    driver.run(
        &mut cluster,
        SimTime::from_secs(10),
        SimDuration::from_secs(5),
        |_| {},
    );
    assert!((cluster.utilizations()[0] - 0.4).abs() < 1e-9);
    let record = cluster.shutdown_vm(vms[0]).expect("present");
    let target = cluster.topo.server(3);
    cluster.install_vm(target, record);
    cluster.reindex();
    driver.run(
        &mut cluster,
        SimTime::from_secs(20),
        SimDuration::from_secs(5),
        |_| {},
    );
    assert!(
        (cluster.utilizations()[3] - 0.4 - 0.0).abs() < 1e-6 || cluster.utilizations()[3] >= 0.4
    );
    assert_eq!(cluster.utilizations()[0], 0.0);
}

#[test]
#[should_panic(expected = "positive")]
fn zero_step_rejected() {
    let (mut cluster, _) = small_cluster();
    TraceDriver::new().run(
        &mut cluster,
        SimTime::from_secs(1),
        SimDuration::ZERO,
        |_| {},
    );
}

//! Workspace-level integration tests: the full stack (sim → dcn → pastry
//! → scribe → aggregation → core) driven through the facade crate.

use std::sync::Arc;

use vbundle::core::{
    metrics, Cluster, ClusterModel, Customer, CustomerId, PlacementPolicy, ResourceSpec,
    ResourceVector, VBundleConfig, VmId, VmRecord,
};
use vbundle::dcn::{Bandwidth, Topology};
use vbundle::pastry::overlay;
use vbundle::sim::{SimDuration, SimTime};

fn mbps(v: f64) -> Bandwidth {
    Bandwidth::from_mbps(v)
}

fn fast_config() -> VBundleConfig {
    VBundleConfig::default()
        .with_update_interval(SimDuration::from_secs(10))
        .with_rebalance_interval(SimDuration::from_secs(40))
        .with_threshold(0.15)
}

/// The complete v-Bundle story in one test: DHT placement clusters the
/// customer; a demand spike opens a satisfaction gap; decentralized
/// shuffling closes it.
#[test]
fn end_to_end_bundle_story() {
    let topo = Arc::new(Topology::paper_testbed());
    let mut cluster = Cluster::builder(Arc::clone(&topo))
        .vbundle(fast_config().with_threshold(0.3))
        .seed(42)
        .build();
    let customer = Customer::new(CustomerId(0), "IBM");
    let spec = ResourceSpec::bandwidth(mbps(100.0), mbps(400.0));
    let mut vms = Vec::new();
    for i in 0..6 {
        let host = cluster
            .boot_and_run(
                i % 15,
                &customer,
                spec,
                ResourceVector::bandwidth_only(mbps(50.0)),
                SimDuration::from_secs(60),
            )
            .expect("boot succeeds");
        // Placement clusters the customer into one rack.
        if i > 0 {
            let first = cluster.placements()[0].2;
            assert_eq!(topo.rack_of(host), topo.rack_of(first));
        }
        vms.push(cluster.placements().last().unwrap().0);
    }
    cluster.reindex();
    let all: Vec<VmId> = cluster.placements().iter().map(|p| p.0).collect();
    for &vm in &all[..3] {
        cluster.set_vm_demand(vm, ResourceVector::bandwidth_only(mbps(380.0)));
    }
    let before = cluster.satisfaction();
    assert!(before.shortfall().as_mbps() > 0.0, "spike must starve");
    cluster.run_until(SimTime::from_mins(5));
    let after = cluster.satisfaction();
    assert_eq!(after.shortfall(), Bandwidth::ZERO, "shuffle closes the gap");
    assert!(cluster.total_migrations() > 0);
}

/// Two runs with the same seed are bit-for-bit identical; a different
/// seed changes details but preserves invariants.
#[test]
fn full_stack_determinism() {
    let run = |seed: u64| {
        let topo = Arc::new(
            Topology::builder()
                .pods(1)
                .racks_per_pod(4)
                .servers_per_rack(4)
                .build(),
        );
        let mut cluster = Cluster::builder(topo)
            .vbundle(fast_config())
            .seed(seed)
            .build();
        // Imbalanced seeding.
        for server in 0..16usize {
            let demand = if server < 4 { 90.0 } else { 20.0 };
            for _ in 0..10 {
                let id = cluster.alloc_vm_id();
                let mut vm = VmRecord::new(
                    id,
                    CustomerId(0),
                    ResourceSpec::bandwidth(Bandwidth::ZERO, mbps(1000.0)),
                );
                vm.demand = ResourceVector::bandwidth_only(mbps(demand));
                let sid = cluster.topo.server(server);
                cluster.install_vm(sid, vm);
            }
        }
        cluster.reindex();
        cluster.run_until(SimTime::from_mins(20));
        let placements: Vec<(u64, usize)> = cluster
            .placements()
            .into_iter()
            .map(|(vm, _, s)| (vm.0, s.index()))
            .collect();
        (
            placements,
            cluster.total_migrations(),
            cluster.engine.events_processed(),
        )
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a, b, "same seed must replay identically");
    let c = run(8);
    // Same VM conservation under any seed.
    assert_eq!(a.0.len(), c.0.len());
}

/// The headline placement claim, cross-crate: v-Bundle's DHT placement
/// consumes less bi-section bandwidth than greedy, which beats random.
#[test]
fn placement_policies_order_by_bisection_usage() {
    let topo = Arc::new(
        Topology::builder()
            .pods(2)
            .racks_per_pod(5)
            .servers_per_rack(8)
            .build(),
    );
    let customers = Customer::paper_five();
    let spec = ResourceSpec::bandwidth(mbps(100.0), mbps(200.0));
    let mut fractions = Vec::new();
    for policy in [
        PlacementPolicy::VBundle,
        PlacementPolicy::Greedy,
        PlacementPolicy::Random,
    ] {
        let ids = overlay::topology_aware_ids(&topo);
        let mut model = ClusterModel::new(Arc::clone(&topo), ids, topo.capacity().into());
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
        let mut id = 0u64;
        for _ in 0..60 {
            for c in &customers {
                let vm = VmRecord::new(VmId(id), c.id, spec);
                id += 1;
                assert!(model.place(policy, c.key, vm, &mut rng).is_some());
            }
        }
        let placements: Vec<_> = model
            .placements()
            .iter()
            .map(|(vm, s)| (vm.customer, *s))
            .collect();
        let tm = metrics::chatting_traffic(&topo, &placements, mbps(40.0));
        fractions.push(tm.bisection_report(&topo).bisection_fraction());
    }
    assert!(
        fractions[0] < fractions[1] && fractions[1] < fractions[2],
        "expected vbundle < greedy < random, got {fractions:?}"
    );
}

/// The facade exposes each layer: drive a raw Pastry route, a Scribe
/// multicast and an aggregation read through the same cluster.
#[test]
fn facade_layers_compose() {
    use vbundle::core::bw_capacity_topic;
    let topo = Arc::new(Topology::paper_testbed());
    let mut cluster = Cluster::builder(topo)
        .vbundle(fast_config())
        .seed(5)
        .build();
    cluster.run_until(SimTime::from_mins(2));
    // Aggregation converged on the capacity topic: 15 servers × 1 Gbps.
    let cap = cluster
        .controller(0)
        .aggregator()
        .global(bw_capacity_topic())
        .expect("capacity aggregate available");
    assert_eq!(cap.count, 15);
    assert!((cap.sum - 15_000.0).abs() < 1e-6);
    // Every server agrees on the mean.
    for i in 0..cluster.num_servers() {
        let mean = cluster.controller(i).cluster_mean().expect("mean known");
        assert!(mean.abs() < 1e-9, "idle cluster has zero utilization");
    }
}

/// Aggregates survive heavy churn: a third of the cluster dies and the
/// capacity count re-converges to the survivor count.
#[test]
fn aggregation_reconverges_after_mass_failure() {
    use vbundle::core::bw_capacity_topic;
    let topo = Arc::new(
        Topology::builder()
            .pods(1)
            .racks_per_pod(6)
            .servers_per_rack(4)
            .build(),
    );
    let mut cluster = Cluster::builder(topo)
        .vbundle(fast_config())
        .seed(6)
        .build();
    cluster.run_until(SimTime::from_mins(2));
    for i in 0..8usize {
        cluster
            .engine
            .fail(vbundle::sim::ActorId::new((i * 3) as u32));
    }
    cluster.run_until(SimTime::from_mins(15));
    let mut live_checked = 0;
    for i in 0..cluster.num_servers() {
        if !cluster
            .engine
            .is_alive(vbundle::sim::ActorId::new(i as u32))
        {
            continue;
        }
        let cap = cluster
            .controller(i)
            .aggregator()
            .global(bw_capacity_topic())
            .expect("aggregate still published");
        assert_eq!(cap.count, 16, "server {i} sees {}", cap.count);
        live_checked += 1;
    }
    assert_eq!(live_checked, 16);
}

/// Chaos invariants in steady state: with no faults injected, every
/// structural checker is quiet on a warmed-up cluster.
#[test]
fn chaos_invariants_hold_in_steady_state() {
    use vbundle::chaos::{check_capacity, check_leaf_sets, check_scribe_trees};
    let topo = Arc::new(Topology::paper_testbed());
    let mut cluster = Cluster::builder(topo)
        .vbundle(fast_config())
        .seed(9)
        .build();
    cluster.run_until(SimTime::from_mins(2));
    let mut open = check_leaf_sets(&cluster.engine);
    open.extend(check_scribe_trees(&cluster.engine));
    open.extend(check_capacity(&cluster.engine));
    assert!(open.is_empty(), "steady-state violations: {open:#?}");
}

/// With failure detection armed (heartbeats + parent probes), a crash is
/// detected and repaired: the invariant checkers go quiet again.
#[test]
fn chaos_crash_repairs_with_detection_enabled() {
    use vbundle::chaos::{check_leaf_sets, check_scribe_trees};
    use vbundle::pastry::PastryConfig;
    use vbundle::scribe::ScribeConfig;
    let topo = Arc::new(Topology::paper_testbed());
    let pastry = PastryConfig {
        heartbeat: Some(SimDuration::from_secs(1)),
        maintenance: Some(SimDuration::from_secs(10)),
        ..PastryConfig::default()
    };
    let mut cluster = Cluster::builder(topo)
        .pastry(pastry)
        .scribe(ScribeConfig::default().with_probe_interval(SimDuration::from_secs(3)))
        .vbundle(fast_config())
        .seed(9)
        .build();
    cluster.run_until(SimTime::from_mins(2));
    cluster.engine.fail(vbundle::sim::ActorId::new(4));
    cluster.run_until(SimTime::from_mins(4));
    let mut open = check_leaf_sets(&cluster.engine);
    open.extend(check_scribe_trees(&cluster.engine));
    assert!(open.is_empty(), "repair did not converge: {open:#?}");
}

/// Regression guard for the checker itself: with the repair path
/// deliberately broken — heartbeats disabled and no application traffic,
/// so neither failure detection nor bounce-driven eviction ever fires —
/// a crash leaves dangling leaf-set entries that the invariant checker
/// MUST flag. If this test fails, the checker has gone blind and the
/// chaos suite proves nothing.
#[test]
fn chaos_checker_catches_broken_repair_path() {
    use vbundle::chaos::check_leaf_sets;
    use vbundle::pastry::{overlay, IdAssignment, PastryConfig};
    let topo = Arc::new(Topology::paper_testbed());
    // Default config: no heartbeats, no maintenance — repair disabled.
    let (mut engine, handles) = overlay::launch_null(
        &topo,
        IdAssignment::Random { seed: 9 },
        PastryConfig::default(),
        9,
    );
    engine.run_until(SimTime::from_mins(1));
    assert!(
        check_leaf_sets(&engine).is_empty(),
        "overlay should be clean before the fault"
    );
    engine.fail(handles[4].actor);
    engine.run_until(SimTime::from_mins(5));
    let leaf = check_leaf_sets(&engine);
    assert!(
        !leaf.is_empty(),
        "checker missed the dangling leaf-set entries of the dead node"
    );
    assert!(
        leaf.iter().any(|v| v.contains("dead")),
        "violations should name the dead node: {leaf:#?}"
    );
}

//! Continuous operation under diurnal demand (§VII's "continuously
//! monitor and manage data center systems").
//!
//! Two anti-phased tenant groups — think a daytime front-end fleet and a
//! nightly batch fleet — swing sinusoidally. v-Bundle keeps re-shuffling
//! as the tide turns, holding the satisfaction gap near zero through
//! multiple cycles without any central scheduler.
//!
//! Run: `cargo run --release --example diurnal_cycles`

use std::sync::Arc;

use vbundle::core::{metrics, Cluster, CustomerId, ResourceSpec, VBundleConfig, VmRecord};
use vbundle::dcn::{Bandwidth, Topology};
use vbundle::harness::TraceDriver;
use vbundle::sim::{SimDuration, SimTime};
use vbundle::workloads::Trace;

fn main() {
    let topo = Arc::new(
        Topology::builder()
            .pods(2)
            .racks_per_pod(4)
            .servers_per_rack(4)
            .build(),
    );
    let period = SimDuration::from_mins(60);
    let config = VBundleConfig::default()
        .with_update_interval(SimDuration::from_secs(60))
        .with_rebalance_interval(SimDuration::from_mins(5))
        .with_threshold(0.15);
    let mut cluster = Cluster::builder(Arc::clone(&topo))
        .vbundle(config)
        .seed(101)
        .build();

    // Group A (daytime) starts packed on the first half of the servers,
    // group B (nightly) on the second half — the worst case for a static
    // allocation, since their peaks land on disjoint hardware.
    let mut driver = TraceDriver::new();
    let n = topo.num_servers();
    for server in 0..n {
        for slot in 0..5 {
            let group_a = server < n / 2;
            let id = cluster.alloc_vm_id();
            let vm = VmRecord::new(
                id,
                CustomerId(if group_a { 0 } else { 1 }),
                ResourceSpec::bandwidth(Bandwidth::ZERO, Bandwidth::from_gbps(1.0)),
            );
            cluster.install_vm(topo.server(server), vm);
            driver.assign(
                id,
                Trace::Sinusoid {
                    mean: Bandwidth::from_mbps(90.0),
                    amplitude: Bandwidth::from_mbps(85.0),
                    period,
                    // Group B peaks half a period after group A; slots are
                    // staggered slightly so VMs are individually movable.
                    phase: SimDuration::from_mins(if group_a { 0 } else { 30 })
                        + SimDuration::from_secs(20 * slot as u64),
                },
            );
        }
    }
    cluster.reindex();
    println!(
        "{} servers, {} VMs in two anti-phased groups (60-min period)\n",
        n,
        cluster.num_vms()
    );
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>12}",
        "minute", "mean util", "util SD", "gap (Mbps)", "migrations"
    );

    let mut worst_gap: f64 = 0.0;
    let mut last_print = 0u64;
    driver.run(
        &mut cluster,
        SimTime::from_mins(180), // three full cycles
        SimDuration::from_secs(30),
        |c| {
            let minute = c.now().as_mins_f64() as u64;
            let totals = c.satisfaction();
            let gap = totals.shortfall().as_mbps();
            worst_gap = worst_gap.max(gap);
            if minute >= last_print + 15 {
                last_print = minute;
                let utils = c.utilizations();
                println!(
                    "{:>8} {:>9.1}% {:>12.4} {:>12.0} {:>12}",
                    minute,
                    metrics::mean(&utils) * 100.0,
                    metrics::std_dev(&utils),
                    gap,
                    c.total_migrations()
                );
            }
        },
    );

    let final_gap = cluster.satisfaction().shortfall().as_mbps();
    println!(
        "\nworst transient gap {:.0} Mbps; final gap {:.0} Mbps after {} migrations",
        worst_gap,
        final_gap,
        cluster.total_migrations()
    );
    println!("the bundle keeps following the tide — no operator, no central manager");
}

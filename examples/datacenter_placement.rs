//! Multi-tenant placement study: how the three placement policies spend
//! the datacenter's bi-section bandwidth.
//!
//! Boots the paper's five customers onto a 480-server datacenter under
//! v-Bundle, greedy and random placement, then prices each policy's
//! "chatting VM" traffic against the ToR up-links.
//!
//! Run: `cargo run --release --example datacenter_placement`

use std::sync::Arc;

use vbundle::core::{
    metrics, ClusterModel, Customer, PlacementPolicy, ResourceSpec, ResourceVector, VmId, VmRecord,
};
use vbundle::dcn::{Bandwidth, Topology};
use vbundle::pastry::overlay;

fn main() {
    let topo = Arc::new(
        Topology::builder()
            .pods(3)
            .racks_per_pod(10)
            .servers_per_rack(16)
            .oversubscription(8.0)
            .build(),
    );
    println!(
        "datacenter: {} servers, {} racks, {} pods, ToR uplinks {} ({}:1 oversubscribed)\n",
        topo.num_servers(),
        topo.num_racks(),
        topo.num_pods(),
        topo.tor_uplink_capacity(topo.racks().next().unwrap()),
        topo.oversubscription()
    );

    let customers = Customer::paper_five();
    let per_customer = 300;
    let spec = ResourceSpec::bandwidth(Bandwidth::from_mbps(100.0), Bandwidth::from_mbps(200.0));

    println!(
        "{:<10} {:>14} {:>16} {:>18} {:>16}",
        "policy", "racks/customer", "same_rack_pairs", "bisection_share", "max_uplink_util"
    );
    for policy in [
        PlacementPolicy::VBundle,
        PlacementPolicy::Greedy,
        PlacementPolicy::Random,
    ] {
        let ids = overlay::topology_aware_ids(&topo);
        let mut model = ClusterModel::new(Arc::clone(&topo), ids, topo.capacity().into());
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(9);
        let mut id = 0u64;
        for round in 0..per_customer {
            for c in &customers {
                let vm = VmRecord::new(VmId(id), c.id, spec);
                id += 1;
                model
                    .place(policy, c.key, vm, &mut rng)
                    .unwrap_or_else(|| panic!("placement failed in round {round}"));
            }
        }
        let placements: Vec<_> = model
            .placements()
            .iter()
            .map(|(vm, s)| (vm.customer, *s))
            .collect();
        let locality = metrics::customer_locality(&topo, &placements);
        let mean_racks =
            locality.iter().map(|l| l.racks_spanned).sum::<usize>() as f64 / locality.len() as f64;
        let mean_same_rack = locality
            .iter()
            .map(|l| l.same_rack_pair_fraction)
            .sum::<f64>()
            / locality.len() as f64;
        // Every same-customer pair chats; VMs offer 40 Mbps each.
        let tm = metrics::chatting_traffic(&topo, &placements, Bandwidth::from_mbps(40.0));
        let report = tm.bisection_report(&topo);
        println!(
            "{:<10} {:>14.1} {:>15.1}% {:>17.1}% {:>15.2}x",
            format!("{policy:?}"),
            mean_racks,
            mean_same_rack * 100.0,
            report.bisection_fraction() * 100.0,
            report.max_uplink().map(|u| u.utilization()).unwrap_or(0.0)
        );
        let _ = ResourceVector::ZERO;
    }
    println!("\nv-Bundle keeps chatting traffic off the oversubscribed up-links;");
    println!("greedy interleaves tenants and random scatters them across pods.");
}

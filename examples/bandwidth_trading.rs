//! Bandwidth trading inside one customer's bundle — the paper's Figure 1
//! scenario played end-to-end.
//!
//! A customer owns 3 standard (100 Mbps) and 3 high-I/O (200 Mbps)
//! instances on hosts with 400 Mbps NICs. When two front-end VMs spike
//! past their hosts' capacity while the back-ends idle, the de-facto
//! fixed-size offering would cap the customer at her per-host allocations;
//! v-Bundle discovers the idle capacity and migrates VMs so the *bundle
//! total* is what binds.
//!
//! Run: `cargo run --release --example bandwidth_trading`

use std::sync::Arc;

use vbundle::core::{
    Cluster, Customer, CustomerId, ResourceSpec, ResourceVector, VBundleConfig, VmRecord,
};
use vbundle::dcn::{Bandwidth, ServerCapacity, Topology};
use vbundle::sim::{SimDuration, SimTime};

fn mbps(v: f64) -> Bandwidth {
    Bandwidth::from_mbps(v)
}

fn main() {
    // Three hosts with 400 Mbps NICs, as in Figure 1.
    let topo = Arc::new(
        Topology::builder()
            .pods(1)
            .racks_per_pod(1)
            .servers_per_rack(3)
            .server_capacity(ServerCapacity::figure1_example())
            .build(),
    );
    let config = VBundleConfig::default()
        .with_update_interval(SimDuration::from_secs(10))
        .with_rebalance_interval(SimDuration::from_secs(30))
        .with_threshold(0.2);
    let mut cluster = Cluster::builder(Arc::clone(&topo))
        .vbundle(config)
        .seed(1)
        .build();

    let customer = Customer::new(CustomerId(0), "IBM");
    // Figure 1's bundle: VM1-3 standard (100 Mbps reserved), VM4-6 high
    // I/O (200 Mbps reserved), two per host. Unlike EC2's fixed sizes,
    // v-Bundle limits let a VM *borrow* idle bundle capacity up to the
    // host NIC.
    let mut vms = Vec::new();
    for (i, host) in [(0usize, 0usize), (1, 0), (2, 1), (3, 1), (4, 2), (5, 2)] {
        let reservation = if i < 3 { mbps(100.0) } else { mbps(200.0) };
        let id = cluster.alloc_vm_id();
        let mut vm = VmRecord::new(
            id,
            customer.id,
            ResourceSpec::bandwidth(reservation, mbps(400.0)),
        );
        vm.demand = ResourceVector::bandwidth_only(mbps(50.0));
        cluster.install_vm(topo.server(host), vm);
        vms.push(id);
    }
    cluster.reindex();

    let report = |cluster: &Cluster, label: &str| {
        let totals = cluster.satisfaction();
        let utils = cluster.utilizations();
        println!(
            "{label:<22} demand {:>5.0} Mbps | satisfied {:>5.0} Mbps | host loads {:?}",
            totals.demand.as_mbps(),
            totals.satisfied.as_mbps(),
            utils
                .iter()
                .map(|u| format!("{:.0}%", u * 100.0))
                .collect::<Vec<_>>()
        );
    };

    println!("bundle: 3×100 + 3×200 Mbps instances on 3×400 Mbps hosts\n");
    report(&cluster, "(a) light load:");

    // (b) VM3 and VM4 (sharing host 1) spike far beyond that host's
    // 400 Mbps NIC while the other four VMs idle.
    cluster.set_vm_demand(vms[2], ResourceVector::bandwidth_only(mbps(250.0)));
    cluster.set_vm_demand(vms[3], ResourceVector::bandwidth_only(mbps(350.0)));
    for &vm in &[vms[0], vms[1], vms[4], vms[5]] {
        cluster.set_vm_demand(vm, ResourceVector::bandwidth_only(mbps(20.0)));
    }
    report(&cluster, "(b) spike on host 1:");
    let before = cluster.satisfaction().shortfall();

    // (c) Let v-Bundle trade: host 1 sheds, hosts 0/2 receive.
    cluster.run_until(SimTime::from_mins(5));
    cluster.reindex();
    report(&cluster, "(c) after v-Bundle:");
    let after = cluster.satisfaction().shortfall();
    println!(
        "\nshortfall: {:.0} Mbps -> {:.0} Mbps with {} migration(s)",
        before.as_mbps(),
        after.as_mbps(),
        cluster.total_migrations()
    );
    println!("the customer's 900 Mbps bundle now serves the spike without buying anything new");
    assert!(after < before, "trading must reduce the shortfall");
}

//! Bandwidth trading inside one customer's bundle — the paper's Figure 1
//! scenario played end-to-end — followed by the priced spot market that
//! trades *across* bundles.
//!
//! Act 1: a customer owns 3 standard (100 Mbps) and 3 high-I/O (200 Mbps)
//! instances on hosts with 400 Mbps NICs. When two front-end VMs spike
//! past their hosts' capacity while the back-ends idle, the de-facto
//! fixed-size offering would cap the customer at their per-host
//! allocations; v-Bundle discovers the idle capacity and migrates VMs so
//! the *bundle total* is what binds.
//!
//! Act 2: a tenant whose own bundle has nothing left to give buys spare
//! entitlement from a *different* tenant at the provider's spot quote —
//! every Mbps·s metered into double-entry billing books that reconcile
//! to the cent.
//!
//! Run: `cargo run --release --example bandwidth_trading`

use std::collections::BTreeMap;
use std::sync::Arc;

use vbundle::core::{
    reconcile, BillingRecord, Cluster, Customer, CustomerId, ResourceSpec, ResourceVector,
    SpotMarketConfig, VBundleConfig, VmRecord,
};
use vbundle::dcn::{Bandwidth, ServerCapacity, Topology};
use vbundle::sim::{SimDuration, SimTime};

fn mbps(v: f64) -> Bandwidth {
    Bandwidth::from_mbps(v)
}

fn main() {
    // Three hosts with 400 Mbps NICs, as in Figure 1.
    let topo = Arc::new(
        Topology::builder()
            .pods(1)
            .racks_per_pod(1)
            .servers_per_rack(3)
            .server_capacity(ServerCapacity::figure1_example())
            .build(),
    );
    let config = VBundleConfig::default()
        .with_update_interval(SimDuration::from_secs(10))
        .with_rebalance_interval(SimDuration::from_secs(30))
        .with_threshold(0.2);
    let mut cluster = Cluster::builder(Arc::clone(&topo))
        .vbundle(config)
        .seed(1)
        .build();

    let customer = Customer::new(CustomerId(0), "IBM");
    // Figure 1's bundle: VM1-3 standard (100 Mbps reserved), VM4-6 high
    // I/O (200 Mbps reserved), two per host. Unlike EC2's fixed sizes,
    // v-Bundle limits let a VM *borrow* idle bundle capacity up to the
    // host NIC.
    let mut vms = Vec::new();
    for (i, host) in [(0usize, 0usize), (1, 0), (2, 1), (3, 1), (4, 2), (5, 2)] {
        let reservation = if i < 3 { mbps(100.0) } else { mbps(200.0) };
        let id = cluster.alloc_vm_id();
        let mut vm = VmRecord::new(
            id,
            customer.id,
            ResourceSpec::bandwidth(reservation, mbps(400.0)),
        );
        vm.demand = ResourceVector::bandwidth_only(mbps(50.0));
        cluster.install_vm(topo.server(host), vm);
        vms.push(id);
    }
    cluster.reindex();

    let report = |cluster: &Cluster, label: &str| {
        let totals = cluster.satisfaction();
        let utils = cluster.utilizations();
        println!(
            "{label:<22} demand {:>5.0} Mbps | satisfied {:>5.0} Mbps | host loads {:?}",
            totals.demand.as_mbps(),
            totals.satisfied.as_mbps(),
            utils
                .iter()
                .map(|u| format!("{:.0}%", u * 100.0))
                .collect::<Vec<_>>()
        );
    };

    println!("bundle: 3×100 + 3×200 Mbps instances on 3×400 Mbps hosts\n");
    report(&cluster, "(a) light load:");

    // (b) VM3 and VM4 (sharing host 1) spike far beyond that host's
    // 400 Mbps NIC while the other four VMs idle.
    cluster.set_vm_demand(vms[2], ResourceVector::bandwidth_only(mbps(250.0)));
    cluster.set_vm_demand(vms[3], ResourceVector::bandwidth_only(mbps(350.0)));
    for &vm in &[vms[0], vms[1], vms[4], vms[5]] {
        cluster.set_vm_demand(vm, ResourceVector::bandwidth_only(mbps(20.0)));
    }
    report(&cluster, "(b) spike on host 1:");
    let before = cluster.satisfaction().shortfall();

    // (c) Let v-Bundle trade: host 1 sheds, hosts 0/2 receive.
    cluster.run_until(SimTime::from_mins(5));
    cluster.reindex();
    report(&cluster, "(c) after v-Bundle:");
    let after = cluster.satisfaction().shortfall();
    println!(
        "\nshortfall: {:.0} Mbps -> {:.0} Mbps with {} migration(s)",
        before.as_mbps(),
        after.as_mbps(),
        cluster.total_migrations()
    );
    println!("the customer's 900 Mbps bundle now serves the spike without buying anything new");
    assert!(after < before, "trading must reduce the shortfall");

    spot_market_act();
}

/// Act 2 — when the bundle itself is exhausted, the spot market: tenant
/// "IBM" owns a single starved VM (no sibling can help), tenant "Acme"
/// idles next door. With `spot_market` on, IBM's host shops the pod's
/// spot group, accepts Acme's priced quote under its budget/price
/// policy, and both sides meter the lease into billing books.
fn spot_market_act() {
    println!("\n--- spot market: buying across the tenant boundary ---");
    let topo = Arc::new(
        Topology::builder()
            .pods(1)
            .racks_per_pod(2)
            .servers_per_rack(2)
            .build(),
    );
    let config = VBundleConfig::default()
        .with_update_interval(SimDuration::from_secs(5))
        .with_rebalance_interval(SimDuration::from_secs(1000))
        .with_bundle_trading(true)
        .with_lease_duration(SimDuration::from_secs(120))
        .with_spot_market(SpotMarketConfig::default());
    let mut cluster = Cluster::builder(Arc::clone(&topo))
        .vbundle(config)
        .seed(20120618)
        .build();

    let ibm = Customer::new(CustomerId(0), "IBM");
    let acme = Customer::new(CustomerId(1), "Acme");
    // IBM: one starved VM, alone in its bundle — intra-bundle trading has
    // no counterparty. Acme: a fat idle VM one rack over.
    let id = cluster.alloc_vm_id();
    let mut vm = VmRecord::new(
        id,
        ibm.id,
        ResourceSpec::bandwidth(mbps(100.0), mbps(100.0)),
    );
    vm.demand = ResourceVector::bandwidth_only(mbps(300.0));
    cluster.install_vm(topo.server(0), vm);
    let id = cluster.alloc_vm_id();
    let mut vm = VmRecord::new(
        id,
        acme.id,
        ResourceSpec::bandwidth(mbps(200.0), mbps(200.0)),
    );
    vm.demand = ResourceVector::bandwidth_only(mbps(2.0));
    cluster.install_vm(topo.server(1), vm);
    cluster.reindex();

    cluster.run_until(SimTime::from_secs(90));

    // The lease IBM bought, at the provider's quoted spot price.
    let now = cluster.now();
    for i in 0..cluster.num_servers() {
        for h in cluster.controller(i).trade_book().halves() {
            if h.lease.is_priced() && h.lease.cross_tenant() && h.lease.live_at(now) {
                println!(
                    "server {i}: {:?} half of lease {} — {:.0} Mbps of {}'s bundle to {} \
                     at {:.3} per Mbps·s",
                    h.role,
                    h.lease.id,
                    h.lease.amount.bandwidth.as_mbps(),
                    acme.name,
                    ibm.name,
                    h.lease.price
                );
            }
        }
    }

    // Per-tenant bills, folded from every server's double-entry book.
    let mut bills: BTreeMap<u32, BillingRecord> = BTreeMap::new();
    for i in 0..cluster.num_servers() {
        cluster.controller(i).billing().fold_into(&mut bills);
    }
    for (tenant, bill) in &bills {
        let name = if *tenant == 0 {
            ibm.name.as_str()
        } else {
            acme.name.as_str()
        };
        println!(
            "{name:<5} bill: spent {:>9.3} | earned {:>9.3} | provider fees {:>7.3}",
            bill.spend, bill.revenue, bill.fees
        );
    }
    let rec = reconcile((0..cluster.num_servers()).map(|i| cluster.controller(i).billing()));
    assert!(
        rec.balanced(),
        "billing must reconcile: {:#?}",
        rec.violations
    );
    assert!(rec.total_spend > 0.0, "no priced trade cleared");
    let ibm_bill = bills.get(&0).copied().unwrap_or_default();
    let acme_bill = bills.get(&1).copied().unwrap_or_default();
    assert!(ibm_bill.spend > 0.0 && acme_bill.revenue > 0.0);
    println!("priced spot lease settled: buyer paid, seller earned, books reconcile");
}

//! Quickstart: boot a customer's VM bundle through the DHT placement
//! protocol, overload one instance, and watch v-Bundle shuffle bandwidth
//! inside the bundle.
//!
//! Run: `cargo run --release --example quickstart`

use std::sync::Arc;

use vbundle::core::{Cluster, Customer, CustomerId, ResourceSpec, ResourceVector, VBundleConfig};
use vbundle::dcn::{Bandwidth, Topology};
use vbundle::sim::{SimDuration, SimTime};

fn main() {
    // ── 1. A datacenter: the paper's 15-server testbed (4 racks, 1 Gbps
    //       NICs, 8:1 oversubscribed ToR up-links).
    let topo = Arc::new(Topology::paper_testbed());
    println!(
        "datacenter: {} servers / {} racks, {} per NIC",
        topo.num_servers(),
        topo.num_racks(),
        topo.capacity().bandwidth
    );

    // ── 2. A v-Bundle cluster with fast control loops so the demo
    //       finishes in seconds of simulated time.
    let config = VBundleConfig::default()
        .with_update_interval(SimDuration::from_secs(10))
        .with_rebalance_interval(SimDuration::from_secs(30))
        .with_threshold(0.3);
    let mut cluster = Cluster::builder(Arc::clone(&topo))
        .vbundle(config)
        .seed(42)
        .build();

    // ── 3. One customer boots 6 instances: 3 standard (100 Mbps) and 3
    //       high-I/O (200 Mbps), the paper's Figure 1 bundle.
    let ibm = Customer::new(CustomerId(0), "IBM");
    let standard =
        ResourceSpec::bandwidth(Bandwidth::from_mbps(100.0), Bandwidth::from_mbps(400.0));
    let high_io = ResourceSpec::bandwidth(Bandwidth::from_mbps(200.0), Bandwidth::from_mbps(400.0));
    let mut vms = Vec::new();
    for i in 0..6 {
        let spec = if i < 3 { standard } else { high_io };
        let (request, vm) = cluster.request_boot(
            i % topo.num_servers(),
            &ibm,
            spec,
            ResourceVector::bandwidth_only(Bandwidth::from_mbps(50.0)),
        );
        // Drive the simulation until the boot query resolves.
        while cluster
            .boot_result(i % topo.num_servers(), request)
            .is_none()
        {
            cluster.run_for(SimDuration::from_millis(100));
        }
        let host = cluster
            .boot_result(i % topo.num_servers(), request)
            .flatten()
            .expect("placed");
        println!(
            "  booted {vm} ({}) on {} (rack {})",
            if i < 3 { "standard" } else { "high-I/O" },
            topo.server(host.actor.index()),
            topo.rack_of(topo.server(host.actor.index())).index()
        );
        vms.push(vm);
    }
    cluster.reindex();

    // ── 4. Three VMs' workloads spike toward their 400 Mbps limits —
    //       1290 Mbps of demand against their shared host's 1 Gbps NIC,
    //       but comfortably within the customer's bundle.
    for &vm in &vms[..3] {
        cluster.set_vm_demand(
            vm,
            ResourceVector::bandwidth_only(Bandwidth::from_mbps(380.0)),
        );
    }
    let before = cluster.satisfaction();
    println!(
        "\nafter the spike: demand {:.0} Mbps, satisfied {:.0} Mbps (gap {:.0})",
        before.demand.as_mbps(),
        before.satisfied.as_mbps(),
        before.shortfall().as_mbps()
    );

    // ── 5. Let the decentralized shuffle run: aggregation trees publish
    //       the cluster mean, hot servers shed, cold servers receive.
    cluster.run_until(SimTime::from_mins(5));
    let after = cluster.satisfaction();
    println!(
        "after rebalancing: demand {:.0} Mbps, satisfied {:.0} Mbps (gap {:.0}), {} migrations",
        after.demand.as_mbps(),
        after.satisfied.as_mbps(),
        after.shortfall().as_mbps(),
        cluster.total_migrations()
    );
    assert!(
        after.shortfall() <= before.shortfall(),
        "shuffling must not make the bundle worse"
    );
    println!("\nv-Bundle borrowed idle bandwidth from the customer's own instances — no extra resources purchased.");
}

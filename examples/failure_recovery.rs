//! Failure injection: the decentralized machinery self-repairs.
//!
//! Kills a slice of servers mid-run and shows that (1) Pastry evicts the
//! dead nodes and keeps routing, (2) the Scribe aggregation trees re-graft
//! and the cluster mean re-converges on the survivors, and (3) rebalancing
//! keeps working afterwards — the "no central manager, no single point of
//! failure" argument of §III.E.
//!
//! Run: `cargo run --release --example failure_recovery`

use std::sync::Arc;

use vbundle::core::{
    bw_capacity_topic, Cluster, CustomerId, ResourceSpec, ResourceVector, VBundleConfig, VmRecord,
};
use vbundle::dcn::{Bandwidth, Topology};
use vbundle::sim::{ActorId, SimDuration, SimTime};

fn main() {
    let topo = Arc::new(
        Topology::builder()
            .pods(2)
            .racks_per_pod(4)
            .servers_per_rack(4)
            .build(),
    );
    let n = topo.num_servers();
    let config = VBundleConfig::default()
        .with_update_interval(SimDuration::from_secs(15))
        .with_rebalance_interval(SimDuration::from_secs(45))
        .with_threshold(0.15);
    let mut cluster = Cluster::builder(Arc::clone(&topo))
        .vbundle(config)
        .seed(77)
        .build();

    // Load: first four servers hot (90%), the rest at 25%.
    for server in 0..n {
        let demand = if server < 4 { 900.0 } else { 250.0 };
        for _ in 0..9 {
            let id = cluster.alloc_vm_id();
            let mut vm = VmRecord::new(
                id,
                CustomerId(0),
                ResourceSpec::bandwidth(Bandwidth::ZERO, Bandwidth::from_gbps(1.0)),
            );
            vm.demand = ResourceVector::bandwidth_only(Bandwidth::from_mbps(demand / 9.0));
            let sid = cluster.topo.server(server);
            cluster.install_vm(sid, vm);
        }
    }
    cluster.reindex();
    let vms_total = cluster.num_vms();
    println!("{} servers, {} VMs; servers 0-3 run hot", n, vms_total);

    // Phase 1: converge.
    cluster.run_until(SimTime::from_mins(3));
    let mean_before = cluster.controller(10).cluster_mean();
    println!(
        "t=3min   cluster mean seen by server 10: {:?}, migrations: {}",
        mean_before.map(|m| format!("{m:.3}")),
        cluster.total_migrations()
    );

    // Phase 2: a rack's worth of (cold) servers dies.
    let victims: Vec<usize> = (20..24).collect();
    for &v in &victims {
        cluster.engine.fail(ActorId::new(v as u32));
    }
    println!("t=3min   killed servers {victims:?}");

    // Phase 3: the survivors' aggregation re-converges to 28 samples.
    cluster.run_until(SimTime::from_mins(10));
    let survivors = n - victims.len();
    let cap = cluster
        .controller(10)
        .aggregator()
        .global(bw_capacity_topic())
        .expect("capacity aggregate");
    println!(
        "t=10min  capacity aggregate count: {} (expected {survivors} after repair)",
        cap.count
    );
    assert_eq!(
        cap.count as usize, survivors,
        "aggregation did not re-converge"
    );

    // Phase 4: rebalancing still works on the survivors.
    cluster.run_until(SimTime::from_mins(20));
    let utils: Vec<f64> = (0..n)
        .filter(|&i| !victims.contains(&i))
        .map(|i| cluster.controller(i).utilization())
        .collect();
    let mean = utils.iter().sum::<f64>() / utils.len() as f64;
    let max = utils.iter().cloned().fold(0.0, f64::max);
    println!(
        "t=20min  survivors: mean util {:.3}, max util {:.3}, migrations {}",
        mean,
        max,
        cluster.total_migrations()
    );
    assert!(
        max <= mean + 0.15 + 0.12,
        "hot servers were not relieved after the failure"
    );

    // No VM on a live server was lost (the dead servers' VMs die with
    // their hosts, as in a real outage).
    let live_vms: usize = (0..n)
        .filter(|&i| !victims.contains(&i))
        .map(|i| cluster.controller(i).vms().len())
        .sum();
    let dead_vms: usize = victims
        .iter()
        .map(|&i| cluster.controller(i).vms().len())
        .sum();
    println!(
        "         live VMs {live_vms} + lost with dead hosts {dead_vms} = {}",
        live_vms + dead_vms
    );
    assert_eq!(live_vms + dead_vms, vms_total);
    println!("\nno central manager, nothing to restart: the overlay repaired itself.");
}

#!/usr/bin/env bash
# Local CI gate: formatting, lints, build, tests — in the same order a
# hosted pipeline would run them. Fails fast on the cheapest check.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc -D warnings"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo bench --no-run (Criterion benches must keep compiling)"
cargo bench --workspace --no-run --quiet

echo "==> cargo test"
cargo test --workspace

# Each sweep binary's --smoke mode replays a fixed seeded subset and
# byte-compares its report against results/<name>_smoke.golden. Any
# drift prints a unified diff of the blessed golden vs the fresh run.
for sweep in chaos_sweep poison_sweep bundle_market scale_sweep survivability_sweep market_sweep; do
    echo "==> ${sweep} smoke (deterministic golden)"
    cargo run --release -q -p vbundle-bench --bin "${sweep}" -- --smoke
done

# The crash-only failover variant has its own golden: backup sites must
# re-materialize dead domains' VMs without a single Restart event.
echo "==> survivability_sweep --failover smoke (deterministic golden)"
cargo run --release -q -p vbundle-bench --bin survivability_sweep -- --smoke --failover

# The failure-recovery walkthrough doubles as a smoke: pinned seed, hard
# asserts inside, and a known final line that must survive refactors.
echo "==> failure_recovery example smoke (pinned seed)"
cargo run --release -q --example failure_recovery \
    | grep -q "no central manager, nothing to restart: the overlay repaired itself."

# Likewise the spot-market walkthrough: a priced cross-tenant lease must
# clear, bill both sides and reconcile, all under a pinned seed.
echo "==> bandwidth_trading example smoke (pinned seed)"
cargo run --release -q --example bandwidth_trading \
    | grep -q "priced spot lease settled: buyer paid, seller earned, books reconcile"

echo "==> golden files unchanged"
if ! git diff --quiet -- results/*.golden BENCH_surv.json BENCH_market.json; then
    git --no-pager diff -- results/*.golden BENCH_surv.json BENCH_market.json
    echo "golden drift: inspect the diff, then regen with" \
         "'cargo run --release -p vbundle-bench --bin <sweep> -- --smoke --bless'" >&2
    exit 1
fi

echo "CI green."

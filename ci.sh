#!/usr/bin/env bash
# Local CI gate: formatting, lints, build, tests — in the same order a
# hosted pipeline would run them. Fails fast on the cheapest check.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc -D warnings"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace

echo "==> chaos smoke (deterministic golden)"
cargo run --release -q -p vbundle-bench --bin chaos_sweep -- --smoke

echo "==> poison smoke (deterministic golden)"
cargo run --release -q -p vbundle-bench --bin poison_sweep -- --smoke

echo "==> bundle market smoke (deterministic golden)"
cargo run --release -q -p vbundle-bench --bin bundle_market -- --smoke

echo "==> golden files unchanged"
if ! git diff --quiet -- results/*.golden; then
    git --no-pager diff --stat -- results/*.golden
    echo "golden drift: inspect the diff, then regen with" \
         "'cargo run --release -p vbundle-bench --bin <sweep> -- --smoke --bless'" >&2
    exit 1
fi

echo "CI green."

//! **vbundle** — facade crate for the v-Bundle reproduction.
//!
//! Re-exports the workspace crates under one roof:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`sim`] | `vbundle-sim` | deterministic discrete-event engine |
//! | [`obs`] | `vbundle-obs` | metrics registry, flight recorder, profiler |
//! | [`dcn`] | `vbundle-dcn` | datacenter topology + bisection accounting |
//! | [`pastry`] | `vbundle-pastry` | Pastry DHT overlay |
//! | [`scribe`] | `vbundle-scribe` | Scribe multicast/anycast trees |
//! | [`aggregation`] | `vbundle-aggregation` | cross-hypervisor aggregation |
//! | [`trade`] | `vbundle-trade` | bundle ledger, entitlement leases, trade books |
//! | [`market`] | `vbundle-market` | spot price index, double-entry billing ledger |
//! | [`core`] | `vbundle-core` | placement, shaping, resource shuffling |
//! | [`workloads`] | `vbundle-workloads` | traces, SIPp/Iperf models, CDFs |
//! | [`chaos`] | `vbundle-chaos` | fault injection, invariants, recovery metrics |
//!
//! See `examples/quickstart.rs` for a guided tour and `DESIGN.md` for the
//! paper-to-module map.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use vbundle_aggregation as aggregation;
pub use vbundle_chaos as chaos;
pub use vbundle_core as core;
pub use vbundle_dcn as dcn;
pub use vbundle_market as market;
pub use vbundle_obs as obs;
pub use vbundle_pastry as pastry;
pub use vbundle_scribe as scribe;
pub use vbundle_sim as sim;
pub use vbundle_trade as trade;
pub use vbundle_workloads as workloads;

pub mod harness {
    //! Glue between [`crate::workloads`] traces and a running
    //! [`crate::core`] cluster:
    //! drives time-varying per-VM demands through the simulation, the way
    //! the paper's experiments play out demand peaks and lulls.

    use vbundle_core::{Cluster, ResourceVector, VmId};
    use vbundle_sim::{SimDuration, SimTime};
    use vbundle_workloads::Trace;

    /// Replays per-VM demand traces against a cluster in fixed steps.
    ///
    /// Each step the driver refreshes every assigned VM's bandwidth demand
    /// from its trace (VMs follow their traces across migrations), runs
    /// the simulation, and invokes the observer.
    #[derive(Debug, Default)]
    pub struct TraceDriver {
        assignments: Vec<(VmId, Trace)>,
    }

    impl TraceDriver {
        /// Creates an empty driver.
        pub fn new() -> Self {
            TraceDriver::default()
        }

        /// Assigns `trace` to `vm`.
        pub fn assign(&mut self, vm: VmId, trace: Trace) -> &mut Self {
            self.assignments.push((vm, trace));
            self
        }

        /// Number of assigned traces.
        pub fn len(&self) -> usize {
            self.assignments.len()
        }

        /// True if no traces are assigned.
        pub fn is_empty(&self) -> bool {
            self.assignments.is_empty()
        }

        /// Advances the cluster to `until` in steps of `step`, refreshing
        /// demands from the traces before each step and calling
        /// `observe(&cluster)` after it.
        pub fn run(
            &self,
            cluster: &mut Cluster,
            until: SimTime,
            step: SimDuration,
            mut observe: impl FnMut(&Cluster),
        ) {
            assert!(!step.is_zero(), "step must be positive");
            while cluster.now() < until {
                cluster.reindex();
                let now = cluster.now();
                for (vm, trace) in &self.assignments {
                    let demand = trace.demand_at(now);
                    cluster.set_vm_demand(*vm, ResourceVector::bandwidth_only(demand));
                }
                let next = (now + step).min(until);
                cluster.run_until(next);
                observe(cluster);
            }
        }
    }
}
